#include "salus/reg_channel.hpp"

#include <cstring>

#include "crypto/aes_ctr.hpp"
#include "crypto/ct.hpp"
#include "crypto/hmac.hpp"
#include "crypto/siphash.hpp"

namespace salus::core::regchan {

namespace {

Bytes
nonceDnaMessage(uint64_t nonce, uint64_t dna, uint8_t direction)
{
    // The direction byte separates request and response domains, so
    // MAC_rsp(N) can never be replayed as MAC_req(N + 1) (hardening
    // the paper's "incremental operation" per its own §4.3 remark).
    Bytes msg(17);
    storeLe64(msg.data(), nonce);
    storeLe64(msg.data() + 8, dna);
    msg[16] = direction;
    return msg;
}

/** Builds the 16-byte CTR counter block for a direction + counter. */
Bytes
counterBlock(const char label[8], uint64_t ctr)
{
    Bytes block(16);
    std::memcpy(block.data(), label, 8);
    storeLe64(block.data() + 8, ctr);
    return block;
}

uint64_t
truncatedHmac(ByteView macKey, uint64_t ctr, uint64_t ct0, uint64_t ct1,
              const char *direction)
{
    Bytes msg(24 + std::strlen(direction));
    storeLe64(msg.data(), ctr);
    storeLe64(msg.data() + 8, ct0);
    storeLe64(msg.data() + 16, ct1);
    std::memcpy(msg.data() + 24, direction, std::strlen(direction));
    Bytes tag = crypto::hmacSha256(macKey, msg);
    return loadLe64(tag.data());
}

} // namespace

uint64_t
attestRequestMac(ByteView keyAttest, uint64_t nonce, uint64_t dna)
{
    return crypto::sipHash24(keyAttest,
                             nonceDnaMessage(nonce, dna, 'Q'));
}

uint64_t
attestResponseMac(ByteView keyAttest, uint64_t nonce, uint64_t dna)
{
    return crypto::sipHash24(keyAttest,
                             nonceDnaMessage(nonce + 1, dna, 'P'));
}

uint64_t
heartbeatRequestMac(ByteView keyAttest, uint64_t nonce, uint64_t dna)
{
    return crypto::sipHash24(keyAttest,
                             nonceDnaMessage(nonce, dna, 'H'));
}

uint64_t
heartbeatResponseMac(ByteView keyAttest, uint64_t nonce, uint64_t dna,
                     uint64_t count)
{
    Bytes msg = nonceDnaMessage(nonce + 1, dna, 'h');
    msg.resize(25);
    storeLe64(msg.data() + 17, count);
    return crypto::sipHash24(keyAttest, msg);
}

uint64_t
migrationTicketMac(ByteView keyAttest, uint32_t fromDevice,
                   uint32_t toDevice, uint64_t fromDna, uint64_t toDna,
                   uint64_t nonce, ByteView sourceFingerprint)
{
    Bytes msg(33 + sourceFingerprint.size());
    storeLe32(msg.data(), fromDevice);
    storeLe32(msg.data() + 4, toDevice);
    storeLe64(msg.data() + 8, fromDna);
    storeLe64(msg.data() + 16, toDna);
    storeLe64(msg.data() + 24, nonce);
    msg[32] = 'M';
    std::memcpy(msg.data() + 33, sourceFingerprint.data(),
                sourceFingerprint.size());
    return crypto::sipHash24(keyAttest, msg);
}

SealedRegRequest
sealRequest(const crypto::Aes &aes, ByteView macKey, uint64_t ctr,
            const RegOp &op)
{
    uint8_t plain[16] = {};
    plain[0] = op.isWrite ? 1 : 0;
    storeLe32(plain + 1, op.addr);
    storeLe64(plain + 5, op.data);

    crypto::AesCtr cipher(aes, counterBlock("SREGCHAN", ctr));
    cipher.crypt(plain, 16);

    SealedRegRequest req;
    req.ctr = ctr;
    req.ct0 = loadLe64(plain);
    req.ct1 = loadLe64(plain + 8);
    req.mac = truncatedHmac(macKey, ctr, req.ct0, req.ct1, "req");
    return req;
}

SealedRegRequest
sealRequest(ByteView aesKey, ByteView macKey, uint64_t ctr,
            const RegOp &op)
{
    return sealRequest(crypto::Aes(aesKey), macKey, ctr, op);
}

std::optional<RegOp>
openRequest(const crypto::Aes &aes, ByteView macKey,
            const SealedRegRequest &req)
{
    uint64_t expect =
        truncatedHmac(macKey, req.ctr, req.ct0, req.ct1, "req");
    uint8_t a[8], b[8];
    storeLe64(a, expect);
    storeLe64(b, req.mac);
    if (!crypto::ctEqual(ByteView(a, 8), ByteView(b, 8)))
        return std::nullopt;

    uint8_t buf[16];
    storeLe64(buf, req.ct0);
    storeLe64(buf + 8, req.ct1);
    crypto::AesCtr cipher(aes, counterBlock("SREGCHAN", req.ctr));
    cipher.crypt(buf, 16);

    RegOp op;
    op.isWrite = buf[0] != 0;
    op.addr = loadLe32(buf + 1);
    op.data = loadLe64(buf + 5);
    return op;
}

std::optional<RegOp>
openRequest(ByteView aesKey, ByteView macKey, const SealedRegRequest &req)
{
    return openRequest(crypto::Aes(aesKey), macKey, req);
}

SealedRegResponse
sealResponse(const crypto::Aes &aes, ByteView macKey, uint64_t ctr,
             uint8_t status, uint64_t data)
{
    uint8_t plain[16] = {};
    plain[0] = status;
    storeLe64(plain + 1, data);

    crypto::AesCtr cipher(aes, counterBlock("SRSPCHAN", ctr));
    cipher.crypt(plain, 16);

    SealedRegResponse rsp;
    rsp.ct0 = loadLe64(plain);
    rsp.ct1 = loadLe64(plain + 8);
    rsp.mac = truncatedHmac(macKey, ctr, rsp.ct0, rsp.ct1, "rsp");
    return rsp;
}

SealedRegResponse
sealResponse(ByteView aesKey, ByteView macKey, uint64_t ctr,
             uint8_t status, uint64_t data)
{
    return sealResponse(crypto::Aes(aesKey), macKey, ctr, status, data);
}

std::optional<std::pair<uint8_t, uint64_t>>
openResponse(const crypto::Aes &aes, ByteView macKey, uint64_t ctr,
             const SealedRegResponse &rsp)
{
    uint64_t expect =
        truncatedHmac(macKey, ctr, rsp.ct0, rsp.ct1, "rsp");
    uint8_t a[8], b[8];
    storeLe64(a, expect);
    storeLe64(b, rsp.mac);
    if (!crypto::ctEqual(ByteView(a, 8), ByteView(b, 8)))
        return std::nullopt;

    uint8_t buf[16];
    storeLe64(buf, rsp.ct0);
    storeLe64(buf + 8, rsp.ct1);
    crypto::AesCtr cipher(aes, counterBlock("SRSPCHAN", ctr));
    cipher.crypt(buf, 16);

    return std::make_pair(buf[0], loadLe64(buf + 1));
}

std::optional<std::pair<uint8_t, uint64_t>>
openResponse(ByteView aesKey, ByteView macKey, uint64_t ctr,
             const SealedRegResponse &rsp)
{
    return openResponse(crypto::Aes(aesKey), macKey, ctr, rsp);
}

// ---- Batched register bursts -----------------------------------------

void
cryptBatchBlock(const crypto::Aes &aes, bool response, uint64_t ctr,
                uint8_t *block)
{
    // Each op owns the one-block keystream at ("SREGBRST"/"SRSPBRST",
    // ctr). The labels are disjoint from the single-op channel's
    // ("SREGCHAN"/"SRSPCHAN"), so batch and single traffic can share
    // a session counter space without keystream reuse.
    crypto::AesCtr cipher(
        aes, counterBlock(response ? "SRSPBRST" : "SREGBRST", ctr));
    cipher.crypt(block, kRegBatchBlock);
}

void
cryptBatchBlock(ByteView aesKey, bool response, uint64_t ctr,
                uint8_t *block)
{
    cryptBatchBlock(crypto::Aes(aesKey), response, ctr, block);
}

void
encodeBatchOp(const RegOp &op, uint8_t *block)
{
    std::memset(block, 0, kRegBatchBlock);
    block[0] = op.isWrite ? 1 : 0;
    storeLe32(block + 1, op.addr);
    storeLe64(block + 5, op.data);
}

RegOp
decodeBatchOp(const uint8_t *block)
{
    RegOp op;
    op.isWrite = block[0] != 0;
    op.addr = loadLe32(block + 1);
    op.data = loadLe64(block + 5);
    return op;
}

void
encodeBatchResult(uint8_t status, uint64_t data, uint8_t *block)
{
    std::memset(block, 0, kRegBatchBlock);
    block[0] = status;
    storeLe64(block + 1, data);
}

BatchResult
decodeBatchResult(const uint8_t *block)
{
    BatchResult res;
    res.status = block[0];
    res.data = loadLe64(block + 1);
    return res;
}

uint64_t
batchMac(ByteView macKey, uint32_t sessionId, uint64_t ctrBase,
         ByteView payload, bool response)
{
    const char *direction = response ? "brsp" : "breq";
    Bytes msg(20 + payload.size());
    storeLe32(msg.data(), sessionId);
    storeLe64(msg.data() + 4, ctrBase);
    storeLe32(msg.data() + 12, uint32_t(payload.size() / kRegBatchBlock));
    std::memcpy(msg.data() + 16, direction, 4);
    std::copy(payload.begin(), payload.end(), msg.begin() + 20);
    Bytes tag = crypto::hmacSha256(macKey, msg);
    return loadLe64(tag.data());
}

namespace {

/** Structural sanity shared by request and response opening: size,
 *  alignment and counter-stride wrap checks that must pass before
 *  any crypto is attempted. */
bool
batchShapeOk(size_t payloadSize, uint64_t ctrBase)
{
    if (payloadSize == 0 || payloadSize % kRegBatchBlock != 0)
        return false;
    size_t count = payloadSize / kRegBatchBlock;
    if (count > kMaxBatchOps)
        return false;
    // The stride [ctrBase, ctrBase + count - 1] must not wrap: a
    // wrapped stride would alias counter 0's keystream.
    return ctrBase <= UINT64_MAX - (count - 1);
}

bool
macEqual(uint64_t expect, uint64_t got)
{
    uint8_t a[8], b[8];
    storeLe64(a, expect);
    storeLe64(b, got);
    return crypto::ctEqual(ByteView(a, 8), ByteView(b, 8));
}

} // namespace

SealedRegBatch
sealBatch(const crypto::Aes &aes, ByteView macKey, uint32_t sessionId,
          uint64_t ctrBase, const std::vector<RegOp> &ops)
{
    SealedRegBatch batch;
    batch.sessionId = sessionId;
    batch.ctrBase = ctrBase;
    batch.payload.resize(ops.size() * kRegBatchBlock);
    for (size_t i = 0; i < ops.size(); ++i) {
        uint8_t *block = batch.payload.data() + i * kRegBatchBlock;
        encodeBatchOp(ops[i], block);
        cryptBatchBlock(aes, false, ctrBase + i, block);
    }
    batch.mac =
        batchMac(macKey, sessionId, ctrBase, batch.payload, false);
    return batch;
}

SealedRegBatch
sealBatch(ByteView aesKey, ByteView macKey, uint32_t sessionId,
          uint64_t ctrBase, const std::vector<RegOp> &ops)
{
    return sealBatch(crypto::Aes(aesKey), macKey, sessionId, ctrBase,
                     ops);
}

std::optional<std::vector<RegOp>>
openBatch(const crypto::Aes &aes, ByteView macKey,
          const SealedRegBatch &batch)
{
    if (!batchShapeOk(batch.payload.size(), batch.ctrBase))
        return std::nullopt;
    uint64_t expect = batchMac(macKey, batch.sessionId, batch.ctrBase,
                               batch.payload, false);
    if (!macEqual(expect, batch.mac))
        return std::nullopt;

    std::vector<RegOp> ops(batch.count());
    for (size_t i = 0; i < ops.size(); ++i) {
        uint8_t block[kRegBatchBlock];
        std::memcpy(block, batch.payload.data() + i * kRegBatchBlock,
                    kRegBatchBlock);
        cryptBatchBlock(aes, false, batch.ctrBase + i, block);
        ops[i] = decodeBatchOp(block);
    }
    return ops;
}

std::optional<std::vector<RegOp>>
openBatch(ByteView aesKey, ByteView macKey, const SealedRegBatch &batch)
{
    return openBatch(crypto::Aes(aesKey), macKey, batch);
}

SealedBatchResponse
sealBatchResponse(const crypto::Aes &aes, ByteView macKey,
                  uint32_t sessionId, uint64_t ctrBase,
                  const std::vector<BatchResult> &results)
{
    SealedBatchResponse rsp;
    rsp.payload.resize(results.size() * kRegBatchBlock);
    for (size_t i = 0; i < results.size(); ++i) {
        uint8_t *block = rsp.payload.data() + i * kRegBatchBlock;
        encodeBatchResult(results[i].status, results[i].data, block);
        cryptBatchBlock(aes, true, ctrBase + i, block);
    }
    rsp.mac = batchMac(macKey, sessionId, ctrBase, rsp.payload, true);
    return rsp;
}

SealedBatchResponse
sealBatchResponse(ByteView aesKey, ByteView macKey, uint32_t sessionId,
                  uint64_t ctrBase,
                  const std::vector<BatchResult> &results)
{
    return sealBatchResponse(crypto::Aes(aesKey), macKey, sessionId,
                             ctrBase, results);
}

std::optional<std::vector<BatchResult>>
openBatchResponse(const crypto::Aes &aes, ByteView macKey,
                  uint32_t sessionId, uint64_t ctrBase,
                  size_t expectCount, const SealedBatchResponse &rsp)
{
    if (rsp.count() != expectCount ||
        !batchShapeOk(rsp.payload.size(), ctrBase))
        return std::nullopt;
    uint64_t expect =
        batchMac(macKey, sessionId, ctrBase, rsp.payload, true);
    if (!macEqual(expect, rsp.mac))
        return std::nullopt;

    std::vector<BatchResult> results(rsp.count());
    for (size_t i = 0; i < results.size(); ++i) {
        uint8_t block[kRegBatchBlock];
        std::memcpy(block, rsp.payload.data() + i * kRegBatchBlock,
                    kRegBatchBlock);
        cryptBatchBlock(aes, true, ctrBase + i, block);
        results[i] = decodeBatchResult(block);
    }
    return results;
}

std::optional<std::vector<BatchResult>>
openBatchResponse(ByteView aesKey, ByteView macKey, uint32_t sessionId,
                  uint64_t ctrBase, size_t expectCount,
                  const SealedBatchResponse &rsp)
{
    return openBatchResponse(crypto::Aes(aesKey), macKey, sessionId,
                             ctrBase, expectCount, rsp);
}

// ---- Multi-session key fan-out ---------------------------------------

uint64_t
sessionOpenMac(ByteView baseMacKey, uint32_t slot, uint64_t nonce)
{
    uint8_t msg[21];
    storeLe32(msg, slot);
    storeLe64(msg + 4, nonce);
    std::memcpy(msg + 12, "sess-open", 9);
    Bytes tag =
        crypto::hmacSha256(baseMacKey, ByteView(msg, sizeof(msg)));
    return loadLe64(tag.data());
}

Bytes
deriveSlotSessionKeys(ByteView baseKeySession, uint32_t slot,
                      uint64_t nonce)
{
    uint8_t salt[12];
    storeLe32(salt, slot);
    storeLe64(salt + 4, nonce);
    return crypto::hkdf(ByteView(salt, sizeof(salt)), baseKeySession,
                        bytesFromString("salus-msess-v1"), 48);
}

uint64_t
rekeyMac(ByteView macKey, uint64_t ctr, uint64_t nonce)
{
    uint8_t msg[21];
    storeLe64(msg, ctr);
    storeLe64(msg + 8, nonce);
    std::memcpy(msg + 16, "rekey", 5);
    Bytes tag = crypto::hmacSha256(macKey, ByteView(msg, sizeof(msg)));
    return loadLe64(tag.data());
}

std::pair<Bytes, Bytes>
deriveRekeyedKeys(ByteView oldMacKey, uint64_t nonce)
{
    uint8_t salt[8];
    storeLe64(salt, nonce);
    Bytes material = crypto::hkdf(ByteView(salt, 8), oldMacKey,
                                  bytesFromString("salus-rekey-v1"), 48);
    Bytes aes(material.begin(), material.begin() + 16);
    Bytes mac(material.begin() + 16, material.end());
    secureZero(material);
    return {std::move(aes), std::move(mac)};
}

} // namespace salus::core::regchan
