/**
 * @file
 * The user client — the data owner's trusted machine (paper Fig. 6,
 * left). It issues one remote-attestation request, verifies the
 * cascaded report covering {user enclave, SM enclave, CL}, and only
 * then uploads the data key, wrapped to the attested enclave.
 */

#ifndef SALUS_SALUS_USER_CLIENT_HPP
#define SALUS_SALUS_USER_CLIENT_HPP

#include "crypto/random.hpp"
#include "net/network.hpp"
#include "salus/messages.hpp"
#include "salus/sim_hooks.hpp"
#include "tee/quote_verifier.hpp"

namespace salus::core {

/** Everything the data owner must know before deploying. */
struct ClientConfig
{
    tee::Measurement expectedUserEnclave; ///< from the developer
    tee::Measurement expectedSm;          ///< published SM SDK build
    ClMetadata metadata;                  ///< H + Loc_* from developer
    std::string selfEndpoint;
    std::string cloudEndpoint;
    /** Optional policy: pin the developer identity (MRSIGNER). */
    tee::Measurement expectedUserSigner;
    /** Optional policy: minimum user-enclave security version. */
    uint16_t minUserIsvSvn = 0;
    /** Retry schedule for transport-class failures. Each attempt uses
     *  a FRESH nonce (and the final key upload fresh key material), so
     *  retrying can never turn a replay into acceptance; security
     *  rejections are never retried. Default: no retries. */
    net::RetryPolicy retry;
};

/** The data owner's deployment driver. */
class UserClient
{
  public:
    /**
     * @param qvs the (remote) quote verification service; the client
     *            reaches it over the WAN, which the cost model charges.
     */
    UserClient(ClientConfig config,
               const tee::QuoteVerificationService &qvs,
               net::Network &network, crypto::RandomSource &rng,
               SimHooks sim = {});

    /** Result of the one-round-trip platform attestation. */
    struct Outcome
    {
        bool ok = false;
        std::string failure;
        Bytes dataKey; ///< uploaded key when ok
        /** Typed classification of the final failure (None on ok). */
        net::FailureClass failureClass = net::FailureClass::None;
        /** Deployment attempts consumed (>= 1 once run). */
        int attempts = 0;
    };

    /**
     * Runs the full cascaded attestation (paper Fig. 4b) and, on
     * success, uploads a fresh data key to the user enclave.
     * Transport-class failures are retried per config.retry, each
     * attempt with a fresh nonce; security rejections return
     * immediately and are never retried.
     */
    Outcome deployAndAttest();

  private:
    /** One full attestation round trip (one nonce). */
    Outcome attemptOnce();

    ClientConfig config_;
    const tee::QuoteVerificationService &qvs_;
    net::Network &network_;
    crypto::RandomSource &rng_;
    SimHooks sim_;
};

} // namespace salus::core

#endif // SALUS_SALUS_USER_CLIENT_HPP
