#include "salus/scheduler.hpp"

#include <algorithm>

#include "common/errors.hpp"
#include "obs/trace.hpp"

namespace salus::core {

BatchScheduler::BatchScheduler(Dispatch dispatch)
    : BatchScheduler(std::move(dispatch), Config())
{
}

BatchScheduler::BatchScheduler(Dispatch dispatch, Config config)
    : dispatch_(std::move(dispatch)), config_(config)
{
    config_.queueCapacity = std::max<size_t>(1, config_.queueCapacity);
    config_.maxBatchOps = std::max<size_t>(1, config_.maxBatchOps);
}

void
BatchScheduler::addSession(uint32_t session, uint32_t weight)
{
    auto [it, inserted] = sessions_.try_emplace(session);
    if (inserted)
        it->second.weight =
            std::clamp<uint32_t>(weight, 1, kMaxSessionWeight);
}

void
BatchScheduler::setWeight(uint32_t session, uint32_t weight)
{
    auto it = sessions_.find(session);
    if (it == sessions_.end())
        return;
    it->second.weight =
        std::clamp<uint32_t>(weight, 1, kMaxSessionWeight);
}

uint32_t
BatchScheduler::weightOf(uint32_t session) const
{
    auto it = sessions_.find(session);
    return it == sessions_.end() ? 0 : it->second.weight;
}

uint32_t
BatchScheduler::totalWeight() const
{
    uint32_t total = 0;
    for (const auto &[id, s] : sessions_)
        total += s.weight;
    return total;
}

void
BatchScheduler::countSession(uint32_t id, const char *counter,
                             uint64_t delta)
{
    if (auto *m = obs::metrics())
        m->add("scheduler.session" + std::to_string(id) + "." + counter,
               delta);
}

BatchScheduler::Submit
BatchScheduler::submit(uint32_t session, const regchan::RegOp &op,
                       Completion done)
{
    auto it = sessions_.find(session);
    if (it == sessions_.end())
        return Submit::UnknownSession;
    Session &s = it->second;
    if (s.queue.size() >= config_.queueCapacity) {
        ++stats_.rejectedBackpressure;
        ++s.stats.rejectedBackpressure;
        obs::count("scheduler.backpressure");
        countSession(session, "backpressure");
        return Submit::Backpressure;
    }
    s.queue.push_back({op, std::move(done)});
    ++stats_.submitted;
    ++s.stats.submitted;
    stats_.maxDepth = std::max(stats_.maxDepth, s.queue.size());
    s.stats.maxDepth = std::max(s.stats.maxDepth, s.queue.size());
    return Submit::Accepted;
}

void
BatchScheduler::setDmaDispatch(DmaDispatch dispatch)
{
    dmaDispatch_ = std::move(dispatch);
}

BatchScheduler::Submit
BatchScheduler::submitDma(uint32_t session, DmaJob job)
{
    auto it = sessions_.find(session);
    if (it == sessions_.end())
        return Submit::UnknownSession;
    Session &s = it->second;
    if (!dmaDispatch_ ||
        s.dmaQueue.size() >= config_.dmaQueueCapacity) {
        ++stats_.rejectedBackpressure;
        ++s.stats.rejectedBackpressure;
        obs::count("scheduler.dma_backpressure");
        countSession(session, "dma_backpressure");
        return Submit::Backpressure;
    }
    s.dmaQueue.push_back(std::move(job));
    ++stats_.submitted;
    ++s.stats.submitted;
    return Submit::Accepted;
}

size_t
BatchScheduler::dispatchDmaJob(uint32_t id, Session &s)
{
    if (s.dmaQueue.empty() || !dmaDispatch_)
        return 0;
    obs::Span slice(obs::Category::Scheduler, "dma_slice",
                    uint64_t(id));
    dmachan::DmaTransferReport report;
    try {
        report = dmaDispatch_(id, s.dmaQueue.front());
    } catch (const FailoverError &) {
        // Same contract as a failed-over burst: the in-flight job
        // gets the typed status (never blind-retried), queued jobs
        // survive for the next sweep against the new device.
        DmaJob job = std::move(s.dmaQueue.front());
        s.dmaQueue.pop_front();
        report.status = kBatchStatusFailedOver;
        if (job.done)
            job.done(report);
        ++stats_.dmaJobs;
        ++s.stats.dmaJobs;
        throw;
    }
    DmaJob job = std::move(s.dmaQueue.front());
    s.dmaQueue.pop_front();
    ++stats_.dmaJobs;
    ++s.stats.dmaJobs;
    stats_.dmaBytes += report.bytes;
    s.stats.dmaBytes += report.bytes;
    obs::count("scheduler.dma_jobs");
    countSession(id, "dma_jobs");
    if (job.done)
        job.done(report);
    return 1;
}

size_t
BatchScheduler::dispatchSlice(uint32_t id, Session &s)
{
    // The slice spends this session's DRR credit, capped by what is
    // queued and by the wire format's burst limit. With weight 1 the
    // credit is exactly maxBatchOps and never carries, reproducing
    // the original round-robin slice sizes bit for bit.
    size_t n = std::min(
        std::min(s.queue.size(), size_t(s.deficit)),
        size_t(regchan::kMaxBatchOps));
    obs::Span slice(obs::Category::Scheduler, "session_slice",
                    uint64_t(id));
    obs::observe("scheduler.slice_ops", n);
    std::vector<regchan::RegOp> ops;
    ops.reserve(n);
    for (size_t i = 0; i < n; ++i)
        ops.push_back(s.queue[i].op);

    sim::Nanos sliceStart =
        config_.clock ? config_.clock->now() : sim::Nanos(0);
    std::vector<regchan::BatchResult> results;
    try {
        results = dispatch_(id, ops);
    } catch (const FailoverError &) {
        // The supervisor failed the pool over mid-burst. The ops
        // in flight get the typed failed-over status (exactly-once
        // -or-typed-error: we never blind-retry them); everything
        // still queued survives for the next sweep.
        for (size_t i = 0; i < n; ++i) {
            Pending p = std::move(s.queue.front());
            s.queue.pop_front();
            if (p.done)
                p.done(kBatchStatusFailedOver, 0);
        }
        stats_.failedOverOps += n;
        s.stats.failedOverOps += n;
        s.deficit = s.queue.empty() ? 0 : s.deficit - n;
        s.stats.maxSweepsWaited =
            std::max(s.stats.maxSweepsWaited, s.stats.sweepsWaiting);
        s.stats.sweepsWaiting = 0;
        throw;
    }
    // DispatchBackpressure propagates with the queue AND the granted
    // deficit untouched: the burst never executed, so the same ops
    // retry later verbatim with the same credit.

    for (size_t i = 0; i < n; ++i) {
        Pending p = std::move(s.queue.front());
        s.queue.pop_front();
        uint8_t st = i < results.size() ? results[i].status : 0xfc;
        uint64_t data = i < results.size() ? results[i].data : 0;
        if (p.done)
            p.done(st, data);
    }
    ++stats_.dispatchedBatches;
    stats_.dispatchedOps += n;
    ++s.stats.dispatchedBatches;
    s.stats.dispatchedOps += n;
    // Carry credit only while the burst cap cut the slice short; a
    // drained queue forfeits it (classic DRR anti-hoarding rule).
    s.deficit = s.queue.empty() ? 0 : s.deficit - n;
    if (config_.clock)
        s.stats.sliceNanosLast = config_.clock->now() - sliceStart;
    // Service received: close out the starvation-bound accounting.
    s.stats.maxSweepsWaited =
        std::max(s.stats.maxSweepsWaited, s.stats.sweepsWaiting);
    s.stats.sweepsWaiting = 0;
    return n;
}

size_t
BatchScheduler::pumpOnce()
{
    if (parked_)
        return 0; // quiesced for a live migration
    obs::Span span(obs::Category::Scheduler, "sweep");
    // Snapshot the sweep order starting at the cursor: every session
    // gets one slice per sweep, and the cursor rotates so ties (who
    // goes first) are shared round-robin.
    std::vector<uint32_t> order;
    order.reserve(sessions_.size());
    for (auto it = sessions_.lower_bound(cursor_); it != sessions_.end();
         ++it)
        order.push_back(it->first);
    for (auto it = sessions_.begin();
         it != sessions_.end() && it->first < cursor_; ++it)
        order.push_back(it->first);
    if (!order.empty())
        cursor_ = order.front() + 1;

    size_t completed = 0;
    std::vector<uint32_t> backpressured;
    for (uint32_t id : order) {
        Session &s = sessions_.at(id);
        if (s.queue.empty()) {
            // An idle visit forfeits any carried credit and clears
            // the waiting counter — only BACKLOGGED sweeps count
            // toward the starvation bound.
            s.deficit = 0;
            s.stats.sweepsWaiting = 0;
            continue;
        }
        // Grant this sweep's quantum: weight * maxBatchOps op
        // credits, with carry-over bounded to one extra quantum so a
        // long-idle heavy session cannot hoard a mega-burst.
        ++s.stats.sweepsWaiting;
        uint64_t quantum = uint64_t(s.weight) * config_.maxBatchOps;
        s.deficit = std::min(s.deficit + quantum, 2 * quantum);
        try {
            completed += dispatchSlice(id, s);
        } catch (const DispatchBackpressure &) {
            ++stats_.dispatchBackpressure;
            ++s.stats.dispatchBackpressure;
            obs::count("scheduler.dispatch_backpressure");
            countSession(id, "dispatch_backpressure");
            backpressured.push_back(id);
        }
    }

    // Retry each refused slice exactly once, after the rest of the
    // sweep drained: a transient refusal costs a session its place in
    // line, not the whole sweep — its own later ops aren't starved by
    // its earlier burst.
    for (uint32_t id : backpressured) {
        Session &s = sessions_.at(id);
        if (s.queue.empty())
            continue;
        ++stats_.retriedSlices;
        ++s.stats.retriedSlices;
        obs::count("scheduler.retried_slices");
        countSession(id, "retried_slices");
        try {
            completed += dispatchSlice(id, s);
        } catch (const DispatchBackpressure &) {
            ++stats_.dispatchBackpressure;
            ++s.stats.dispatchBackpressure;
            countSession(id, "dispatch_backpressure");
            // Still refused: the ops stay queued for the next sweep.
        }
    }

    // Bulk lane: one DMA job per backlogged session per sweep, after
    // every register slice — register traffic is never stuck behind a
    // megabyte transfer, and a session's bulk queue still advances
    // every sweep.
    for (uint32_t id : order)
        completed += dispatchDmaJob(id, sessions_.at(id));
    return completed;
}

size_t
BatchScheduler::drain()
{
    size_t completed = 0;
    while (totalQueued() > 0) {
        size_t n = pumpOnce();
        completed += n;
        if (n == 0)
            break; // quiesced or fully backpressured — never spin
    }
    return completed;
}

size_t
BatchScheduler::quiesce()
{
    parked_ = true;
    obs::count("scheduler.quiesce");
    return totalQueued();
}

void
BatchScheduler::release()
{
    parked_ = false;
    obs::count("scheduler.release");
}

size_t
BatchScheduler::queueDepth(uint32_t session) const
{
    auto it = sessions_.find(session);
    return it == sessions_.end() ? 0 : it->second.queue.size();
}

size_t
BatchScheduler::totalQueued() const
{
    size_t total = 0;
    for (const auto &[id, s] : sessions_)
        total += s.queue.size() + s.dmaQueue.size();
    return total;
}

const BatchScheduler::SessionStats &
BatchScheduler::sessionStats(uint32_t session) const
{
    static const SessionStats kEmpty;
    auto it = sessions_.find(session);
    return it == sessions_.end() ? kEmpty : it->second.stats;
}

uint64_t
BatchScheduler::dispatchedFor(uint32_t session) const
{
    auto it = sessions_.find(session);
    return it == sessions_.end() ? 0 : it->second.stats.dispatchedOps;
}

} // namespace salus::core
