/**
 * @file
 * Tenant-isolating session broker: the long-running front end a CSP
 * would run over the Salus platform. The broker owns session
 * lifecycle and tenant policy — everything between "a tenant exists"
 * and "an op reaches the weighted scheduler":
 *
 *  - per-tenant quotas (max concurrent sessions, max queued ops),
 *  - token-bucket rate limits on the VIRTUAL clock (deterministic:
 *    same seed, same admission decisions),
 *  - typed policy rejections (QuotaExceeded / RateLimited /
 *    Overloaded) that carry ErrorContext and are never retried by
 *    the transport layer (net::FailureClass::Policy),
 *  - overload shedding: when the total backlog crosses the high
 *    water mark, whole tenants are shed lowest-weight-first until
 *    the backlog drains under the low water mark. Shedding refuses
 *    NEW submissions only — in-flight secure ops are never dropped
 *    (dropping one would desynchronise the channel counters, which
 *    the threat model treats as an attack).
 *
 * The broker also speaks a small serialized request format
 * (BrokerRequest) so campaigns, fuzzers and remote front ends can
 * drive it without linking against the C++ API.
 */

#ifndef SALUS_SALUS_BROKER_HPP
#define SALUS_SALUS_BROKER_HPP

#include <map>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "salus/scheduler.hpp"
#include "salus/testbed.hpp"

namespace salus::core {

/** Admission policy for one tenant. */
struct TenantPolicy
{
    /** DRR weight of every session this tenant opens. */
    uint32_t weight = 1;
    /** Max concurrently open sessions (quota). */
    uint32_t maxSessions = 1;
    /** Max ops queued across the tenant's sessions (quota). */
    size_t maxQueuedOps = 128;
    /** Sustained submit rate in ops per virtual second; 0 = unlimited. */
    uint64_t ratePerSec = 0;
    /** Token-bucket burst size; 0 defaults to ratePerSec (min 1). */
    uint64_t burst = 0;
};

/** Per-tenant admission/completion counters. */
struct TenantStats
{
    uint64_t admitted = 0;      ///< ops accepted into the scheduler
    uint64_t completed = 0;     ///< ops whose completion fired
    uint64_t quotaRejected = 0; ///< QuotaExceeded verdicts
    uint64_t rateRejected = 0;  ///< RateLimited verdicts
    uint64_t shedRejected = 0;  ///< Overloaded (shed) verdicts
    uint64_t sessionsOpened = 0;
};

// Wire status codes for BrokerRequest responses (PROTOCOLS.md §19).
constexpr uint8_t kBrokerOk = 0;
constexpr uint8_t kBrokerQuotaExceeded = 0xe1;
constexpr uint8_t kBrokerRateLimited = 0xe2;
constexpr uint8_t kBrokerOverloaded = 0xe3;
constexpr uint8_t kBrokerUnknownTenant = 0xe4;
constexpr uint8_t kBrokerBadRequest = 0xe5;

/**
 * One serialized broker request (versioned; deserialize throws
 * SalusError on anything malformed — fuzzed in test_fuzz.cpp).
 */
struct BrokerRequest
{
    enum class Kind : uint8_t {
        OpenSession = 1,
        SubmitOp = 2,
        CloseSession = 3,
    };

    Kind kind = Kind::SubmitOp;
    uint32_t tenant = 0;
    uint32_t session = 0; ///< SubmitOp/CloseSession only
    regchan::RegOp op;    ///< SubmitOp only

    Bytes serialize() const;
    static BrokerRequest deserialize(ByteView data);
};

/** Session broker over a Testbed (see file comment). */
class Broker
{
  public:
    struct Config
    {
        /** Total queued ops (all tenants) that trips shedding. */
        size_t maxTotalQueuedOps = 1024;
        /** Backlog at/below which one shed tenant is readmitted. */
        size_t shedLowWater = 512;
        /** Global cap on concurrently open broker sessions. */
        uint32_t maxTotalSessions = 8;
    };

    using Completion = BatchScheduler::Completion;

    /** Typed handle() outcome (mirror of the wire status). */
    struct Response
    {
        uint8_t status = kBrokerOk;
        uint32_t session = 0; ///< OpenSession result
        std::string detail;   ///< human-readable rejection reason
    };

    explicit Broker(Testbed &tb);
    Broker(Testbed &tb, Config config);

    /** Registers a tenant; @return its id (dense, starting at 1). */
    uint32_t registerTenant(const std::string &name, TenantPolicy policy);

    /**
     * Opens a session for the tenant: a fresh user enclave attached
     * to the platform, a scheduler slot at the tenant's weight.
     * @return the session (peer/slot) id.
     * @throws QuotaExceeded when the tenant is at maxSessions,
     *         Overloaded when the global session table is full.
     */
    uint32_t openSession(uint32_t tenant);

    /** Closes a broker session: further submits are refused and the
     *  tenant's session quota slot frees immediately. Ops already
     *  queued still complete (never dropped). */
    void closeSession(uint32_t tenant, uint32_t session);

    /**
     * Admission-controlled submit. Check order (first wall wins):
     * shed membership (Overloaded) → token bucket (RateLimited) →
     * tenant queued-op quota and scheduler queue (QuotaExceeded).
     * `done` fires when the op's burst completes.
     */
    void submit(uint32_t tenant, uint32_t session,
                const regchan::RegOp &op, Completion done = nullptr);

    /** Serialized front end: maps policy exceptions to wire codes
     *  instead of throwing (malformed ids → kBrokerUnknownTenant /
     *  kBrokerBadRequest). */
    Response handle(const BrokerRequest &req);

    /**
     * One broker tick: recomputes the shed set from the current
     * backlog (deterministic — shedding changes ONLY here, never
     * mid-submit), then runs one weighted scheduler sweep.
     * @return ops completed.
     */
    size_t pump();

    /** Pumps until the backlog is empty or no progress is made. */
    size_t drainAll();

    // ---- Introspection ---------------------------------------------
    const TenantStats &tenantStats(uint32_t tenant) const;
    const TenantPolicy &tenantPolicy(uint32_t tenant) const;
    /** True while the tenant is in the shed set. */
    bool tenantShed(uint32_t tenant) const;
    /** Ops currently queued for the tenant (across its sessions). */
    size_t queuedFor(uint32_t tenant) const;
    size_t totalQueued() const;
    size_t openSessions() const;
    /** Number of tenants currently shed (0 = fully recovered). */
    size_t shedLevel() const { return shedLevel_; }
    uint32_t tenantCount() const { return uint32_t(tenants_.size()); }
    /** Tenant id by registered name (0 when unknown). */
    uint32_t tenantByName(const std::string &name) const;

  private:
    struct Tenant
    {
        std::string name;
        TenantPolicy policy;
        TenantStats stats;
        std::vector<uint32_t> sessions; ///< open session ids
        size_t queued = 0;              ///< ops in the scheduler
        // Token bucket (virtual-clock, integer arithmetic only).
        uint64_t tokens = 0;
        sim::Nanos refillAt = 0; ///< clock position of last refill
        bool bucketPrimed = false;
        bool shed = false;
    };

    Tenant &tenantRef(uint32_t tenant);
    const Tenant &tenantRef(uint32_t tenant) const;
    /** Refills and spends one token. @throws RateLimited when dry. */
    void takeToken(uint32_t tenantId, Tenant &t);
    /** Recomputes the shed set from the backlog (pump()-only). */
    void updateShedding();
    ErrorContext policyContext(uint32_t tenant, const char *method) const;

    Testbed &tb_;
    Config config_;
    /** Tenant id -> state; ids are dense from 1. */
    std::map<uint32_t, Tenant> tenants_;
    /** Session id -> owning tenant id. */
    std::map<uint32_t, uint32_t> sessionTenant_;
    /** Sessions closed by the tenant (refuse new submits). */
    std::map<uint32_t, bool> sessionClosed_;
    /** Number of tenants currently shed (prefix of the shed order). */
    size_t shedLevel_ = 0;
};

} // namespace salus::core

#endif // SALUS_SALUS_BROKER_HPP
