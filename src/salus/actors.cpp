#include "salus/actors.hpp"

#include <algorithm>
#include <deque>

#include "common/errors.hpp"
#include "obs/trace.hpp"
#include "salus/dma_channel.hpp"

namespace salus::core {

// ---- SchedulerPumpActor ----------------------------------------------

uint32_t
SchedulerPumpActor::attach(sim::Engine &engine, const std::string &name)
{
    if (actorId_ == 0)
        actorId_ = engine.addActor(*this, name);
    return actorId_;
}

void
SchedulerPumpActor::startPeriodic(sim::Engine &engine, sim::Nanos period,
                                  uint64_t sweeps)
{
    if (actorId_ == 0 || sweeps == 0)
        return;
    period_ = period;
    remaining_ = sweeps;
    engine.postIn(period_, sim::kPriorityControl, actorId_, kSweep);
}

void
SchedulerPumpActor::onEvent(sim::Engine &engine, const sim::Event &event)
{
    if (event.kind != kSweep)
        return;
    ++sweeps_;
    if (pump_)
        ops_ += pump_();
    if (remaining_ > 0 && --remaining_ > 0)
        engine.postIn(period_, sim::kPriorityControl, actorId_, kSweep);
}

// ---- SupervisorPollActor ---------------------------------------------

uint32_t
SupervisorPollActor::attach(sim::Engine &engine, const std::string &name)
{
    if (actorId_ == 0)
        actorId_ = engine.addActor(*this, name);
    return actorId_;
}

void
SupervisorPollActor::startPeriodic(sim::Engine &engine, sim::Nanos period,
                                   uint64_t polls)
{
    if (actorId_ == 0 || polls == 0)
        return;
    period_ = period;
    remaining_ = polls;
    engine.postIn(period_, sim::kPriorityControl, actorId_, kPoll);
}

void
SupervisorPollActor::onEvent(sim::Engine &engine, const sim::Event &event)
{
    if (event.kind != kPoll)
        return;
    ++polls_;
    try {
        supervisor_.pollOnce();
    } catch (const SalusError &) {
        // Failover propagation surfaces out of pollOnce as an
        // exception in the lockstep drivers too; the event loop keeps
        // running and the owner decides what a failover means.
        ++errors_;
        if (onError_)
            onError_();
    }
    if (remaining_ > 0 && --remaining_ > 0)
        engine.postIn(period_, sim::kPriorityControl, actorId_, kPoll);
}

// ---- DmaLaneActor ----------------------------------------------------

uint32_t
DmaLaneActor::attach(sim::Engine &engine)
{
    if (actorId_ == 0)
        actorId_ = engine.addActor(*this, name_);
    return actorId_;
}

sim::Nanos
DmaLaneActor::simulateJob(sim::Nanos from, const Job &job)
{
    // Mirrors DmaWindowEngine::run's no-loss timing on a LANE-LOCAL
    // timeline: `t` is this lane's clock; stalls and wire time extend
    // it without touching the shared VirtualClock, and exposed seal
    // crypto rides the lane too (the scale model charges crypto to
    // the lane that needs it rather than a shared host core).
    sim::Nanos t = from;
    size_t chunk = std::max<size_t>(job.chunkBytes, 1);
    size_t window =
        std::clamp<size_t>(job.window, 1, dmachan::kDmaMaxWindow);

    sim::Nanos overlapBudget = 0;
    sim::Nanos overlapCap = 2 * cost_.dmaCrypto(chunk);

    auto spendCrypto = [&](sim::Nanos cost) {
        sim::Nanos hidden = std::min(cost, overlapBudget);
        overlapBudget -= hidden;
        stats_.hiddenCryptoNanos += hidden;
        sim::Nanos exposed = cost - hidden;
        t += exposed;
        stats_.cryptoNanos += exposed;
    };
    auto spendTransport = [&](sim::Nanos cost) {
        t += cost;
        stats_.transportNanos += cost;
        overlapBudget = std::min(overlapBudget + cost, overlapCap);
    };

    // In-flight descriptors are a FIFO of ack-due times; only the
    // head ever blocks (cumulative acks), so a ring of Nanos suffices.
    std::deque<sim::Nanos> ackDue;
    auto waitFront = [&]() {
        if (ackDue.front() > t)
            spendTransport(ackDue.front() - t);
        ackDue.pop_front();
    };

    uint64_t remaining = job.bytes;
    while (remaining > 0) {
        size_t payload = size_t(std::min<uint64_t>(remaining, chunk));
        remaining -= payload;
        spendCrypto(cost_.dmaCrypto(payload));
        while (ackDue.size() >= window)
            waitFront();
        spendTransport(sim::transferTime(
            cost_.pcieBandwidth, dmachan::dmaEncodedSize(1, payload)));
        ackDue.push_back(t + cost_.pcieRtt);
        ++stats_.descriptors;
    }
    while (!ackDue.empty())
        waitFront();
    return t;
}

void
DmaLaneActor::submit(sim::Engine &engine, const Job &job)
{
    sim::Nanos now = engine.now();
    sim::Nanos start = std::max(now, stats_.idleUntil);
    if (busyOpen_ && start > stats_.idleUntil) {
        // The lane went idle between jobs: close the coalesced busy
        // span before opening the next period.
        if (obs::TraceRecorder *rec = obs::tracer())
            rec->completeSpan(obs::Category::Shell, name_, busyStart_,
                              stats_.idleUntil);
        busyOpen_ = false;
    }
    if (!busyOpen_) {
        busyOpen_ = true;
        busyStart_ = start;
    }

    sim::Nanos finish = simulateJob(start, job);
    stats_.idleUntil = finish;
    stats_.busyNanos += finish - start;
    ++stats_.jobs;
    stats_.bytes += job.bytes;
    obs::count("dma.lane_jobs");

    // The completion event carries the notification target packed
    // into (a, b); kJobDone dispatches at the lane-local finish time.
    uint64_t packed =
        (uint64_t(job.notifyActor) << 32) | uint64_t(job.notifyKind);
    engine.post(finish, sim::kPriorityBulk, actorId_, kJobDone, packed,
                job.notifyA);
}

void
DmaLaneActor::onEvent(sim::Engine &engine, const sim::Event &event)
{
    if (event.kind != kJobDone)
        return;
    uint32_t notifyActor = uint32_t(event.a >> 32);
    uint32_t notifyKind = uint32_t(event.a & 0xffffffffu);
    if (notifyActor != 0)
        engine.postNow(notifyActor, notifyKind, event.b);
}

void
DmaLaneActor::flushSpans()
{
    if (!busyOpen_)
        return;
    if (obs::TraceRecorder *rec = obs::tracer())
        rec->completeSpan(obs::Category::Shell, name_, busyStart_,
                          stats_.idleUntil);
    busyOpen_ = false;
}

} // namespace salus::core
