#include "salus/sm_logic.hpp"

#include "common/errors.hpp"
#include "common/serde.hpp"
#include "salus/reg_channel.hpp"
#include "salus/secrets.hpp"

namespace salus::core {

void
SmLogic::SessionSlot::setAesKey(Bytes key)
{
    secureZero(aesKey);
    aesKey = std::move(key);
    aesCtx = std::make_unique<crypto::Aes>(aesKey);
}

SmLogic::SmLogic(const netlist::Cell &cell,
                 const netlist::Netlist &design,
                 const fpga::FabricServices &services)
    : dna_(services.dna.value), dram_(services.dram)
{
    // The params blob wired in by the CL builder names our secret
    // BRAMs and our downstream accelerator.
    BinaryReader r(cell.params);
    std::string keyAttestPath = r.readString();
    std::string keySessionPath = r.readString();
    std::string ctrSessionPath = r.readString();
    accelPath_ = r.readString();

    auto bramInit = [&](const std::string &path,
                        size_t expectedSize) -> Bytes {
        const netlist::Cell *bram = design.findCell(path);
        if (!bram || bram->kind != netlist::CellKind::Bram ||
            bram->init.size() != expectedSize) {
            throw DeviceError("SM logic: missing secret BRAM " + path);
        }
        return bram->init;
    };

    keyAttest_ = bramInit(keyAttestPath, kKeyAttestSize);
    Bytes session = bramInit(keySessionPath, kKeySessionSize);
    SessionSlot &base = sessions_[0];
    base.open = true;
    base.setAesKey(sliceBytes(session, 0, 16));
    base.macKey = sliceBytes(session, 16, 32);
    Bytes ctr = bramInit(ctrSessionPath, kCtrSessionSize);
    base.lastCtr = loadLe64(ctr.data());
    secureZero(session);
}

void
SmLogic::connect(fpga::LoadedDesign &design)
{
    accel_ = design.behaviorAt(accelPath_);
}

void
SmLogic::reset()
{
    status_ = kSmStatusIdle;
    for (auto &v : in_)
        v = 0;
    for (auto &v : out_)
        v = 0;
    burstIn_.clear();
    burstOut_.clear();
    burstOutPos_ = 0;
}

uint64_t
SmLogic::readRegister(uint32_t addr)
{
    switch (addr) {
      case kSmRegStatus:
        return status_;
      case kSmRegOut0:
        return out_[0];
      case kSmRegOut1:
        return out_[1];
      case kSmRegOut2:
        return out_[2];
      case kSmRegOut2 + 8:
        return out_[3];
      case kSmRegStatAttestOk:
        return statAttestOk_;
      case kSmRegStatAttestRejected:
        return statAttestRejected_;
      case kSmRegStatRegOpOk:
        return statRegOpOk_;
      case kSmRegStatRegOpRejected:
        return statRegOpRejected_;
      case kSmRegStatHeartbeatOk:
        return statHeartbeatOk_;
      case kSmRegStatHeartbeatRejected:
        return statHeartbeatRejected_;
      case kSmRegStatBatchOk:
        return statBatchOk_;
      case kSmRegStatBatchRejected:
        return statBatchRejected_;
      case kSmRegStatBatchOps:
        return statBatchOps_;
      case kSmRegStatDmaOk:
        return statDmaOk_;
      case kSmRegStatDmaRejected:
        return statDmaRejected_;
      case kSmRegStatDmaBytes:
        return statDmaBytes_;
      case kSmRegStatSessionsOpen: {
        uint64_t open = 0;
        for (const auto &s : sessions_)
            open += s.open ? 1 : 0;
        return open;
      }
      case kSmRegBurstOut: {
        // Pop the next response word; reads past the end return 0.
        if (burstOutPos_ + 8 > burstOut_.size())
            return 0;
        uint64_t word = loadLe64(burstOut_.data() + burstOutPos_);
        burstOutPos_ += 8;
        return word;
      }
      default:
        // Secrets and inputs are never readable from the bus.
        return 0;
    }
}

void
SmLogic::writeRegister(uint32_t addr, uint64_t value)
{
    switch (addr) {
      case kSmRegCmd:
        execute(value);
        break;
      case kSmRegIn0:
        in_[0] = value;
        break;
      case kSmRegIn1:
        in_[1] = value;
        break;
      case kSmRegIn2:
        in_[2] = value;
        break;
      case kSmRegIn3:
        in_[3] = value;
        break;
      case kSmRegBurstIn:
        // Append one payload word; the FIFO is a bounded on-chip
        // buffer, so words beyond the largest burst are dropped.
        if (burstIn_.size() + 8 <=
            regchan::kMaxBatchOps * regchan::kRegBatchBlock) {
            size_t at = burstIn_.size();
            burstIn_.resize(at + 8);
            storeLe64(burstIn_.data() + at, value);
        }
        break;
      case kSmRegBurstReset:
        burstIn_.clear();
        burstOut_.clear();
        burstOutPos_ = 0;
        break;
      default:
        break;
    }
}

void
SmLogic::execute(uint64_t cmd)
{
    for (auto &v : out_)
        v = 0;
    switch (cmd) {
      case kSmCmdAttest:
        doAttest();
        break;
      case kSmCmdSecureReg:
        doSecureReg();
        break;
      case kSmCmdSecureBatch:
        doSecureBatch();
        break;
      case kSmCmdOpenSession:
        doOpenSession();
        break;
      case kSmCmdRekey:
        doRekey();
        break;
      case kSmCmdHeartbeat:
        doHeartbeat();
        break;
      case kSmCmdDmaDoorbell:
        doDmaDoorbell();
        break;
      case kSmCmdDmaAck:
        doDmaAck();
        break;
      default:
        status_ = kSmStatusRejected;
        break;
    }
}

void
SmLogic::doAttest()
{
    // Fig. 4a, prover side: verify MAC_req over (N, DNA') with the
    // local DNA read from the DNA port, then answer with MAC_rsp over
    // (N + 1, DNA'). A wrong MAC produces no response material at all.
    uint64_t nonce = in_[0];
    uint64_t macReq = in_[1];

    uint64_t expect = regchan::attestRequestMac(keyAttest_, nonce, dna_);
    if (macReq != expect) {
        ++statAttestRejected_;
        status_ = kSmStatusRejected;
        return;
    }
    out_[0] = nonce + 1;
    out_[1] = regchan::attestResponseMac(keyAttest_, nonce, dna_);
    ++statAttestOk_;
    status_ = kSmStatusOk;
}

void
SmLogic::doHeartbeat()
{
    // Liveness probe: same trust anchor as attestation (Key_attest),
    // but cheap enough to poll. The response binds a monotone beat
    // count so a recorded "alive" cannot be replayed later.
    uint64_t nonce = in_[0];
    uint64_t macReq = in_[1];

    if (macReq != regchan::heartbeatRequestMac(keyAttest_, nonce, dna_)) {
        ++statHeartbeatRejected_;
        status_ = kSmStatusRejected;
        return;
    }
    uint64_t count = ++statHeartbeatOk_;
    out_[0] = nonce + 1;
    out_[1] = count;
    out_[2] =
        regchan::heartbeatResponseMac(keyAttest_, nonce, dna_, count);
    status_ = kSmStatusOk;
}

void
SmLogic::doRekey()
{
    uint64_t ctr = in_[0];
    uint64_t nonce = in_[1];
    uint64_t mac = in_[3];

    SessionSlot &base = sessions_[0];
    if (ctr <= base.lastCtr ||
        mac != regchan::rekeyMac(base.macKey, ctr, nonce)) {
        ++statRegOpRejected_;
        status_ = kSmStatusRejected;
        return;
    }
    base.lastCtr = ctr;
    auto [aes, macKey] = regchan::deriveRekeyedKeys(base.macKey, nonce);
    base.setAesKey(std::move(aes));
    secureZero(base.macKey);
    base.macKey = std::move(macKey);
    ++statRegOpOk_;
    status_ = kSmStatusOk;
}

uint64_t
SmLogic::executeOp(const regchan::RegOp &op, uint8_t &opStatus)
{
    opStatus = 0;
    uint64_t data = 0;
    if (!accel_) {
        opStatus = 2; // no accelerator behind us
    } else if (op.isWrite) {
        accel_->writeRegister(op.addr, op.data);
    } else {
        data = accel_->readRegister(op.addr);
    }
    return data;
}

void
SmLogic::doSecureReg()
{
    regchan::SealedRegRequest req;
    req.ctr = in_[0];
    req.ct0 = in_[1];
    req.ct1 = in_[2];
    req.mac = in_[3];

    SessionSlot &base = sessions_[0];
    // Freshness: the session counter must strictly increase. A replay
    // of an earlier (valid) transaction fails here.
    if (req.ctr <= base.lastCtr) {
        ++statRegOpRejected_;
        status_ = kSmStatusRejected;
        return;
    }
    auto op = regchan::openRequest(base.aes(), base.macKey, req);
    if (!op) {
        ++statRegOpRejected_;
        status_ = kSmStatusRejected;
        return;
    }
    base.lastCtr = req.ctr;

    uint8_t opStatus = 0;
    uint64_t data = executeOp(*op, opStatus);

    regchan::SealedRegResponse rsp = regchan::sealResponse(
        base.aes(), base.macKey, req.ctr, opStatus, data);
    out_[0] = rsp.ct0;
    out_[1] = rsp.ct1;
    out_[2] = rsp.mac;
    ++statRegOpOk_;
    status_ = kSmStatusOk;
}

void
SmLogic::doSecureBatch()
{
    uint64_t ctrBase = in_[0];
    uint64_t count = in_[1];
    uint64_t slotId = in_[2];
    uint64_t mac = in_[3];

    auto reject = [&] {
        ++statBatchRejected_;
        status_ = kSmStatusRejected;
    };

    // Shape checks first: a bad burst must reject without consuming
    // counter state or touching any key material beyond the MAC check.
    if (slotId >= kSmMaxSessions || !sessions_[slotId].open ||
        count == 0 || count > regchan::kMaxBatchOps ||
        burstIn_.size() != count * regchan::kRegBatchBlock) {
        reject();
        return;
    }
    SessionSlot &slot = sessions_[slotId];
    if (ctrBase <= slot.lastCtr ||
        ctrBase > UINT64_MAX - (count - 1)) {
        reject();
        return;
    }
    uint64_t expect = regchan::batchMac(
        slot.macKey, static_cast<uint32_t>(slotId), ctrBase, burstIn_,
        /*response=*/false);
    if (mac != expect) {
        reject();
        return;
    }
    // Authentic and fresh: the whole stride is consumed even if an op
    // inside reports an accelerator-level error.
    slot.lastCtr = ctrBase + (count - 1);

    // Stream block by block: decrypt the request block in place,
    // execute, then encode + encrypt the response block directly into
    // the output FIFO. No intermediate plaintext vector.
    burstOut_.assign(count * regchan::kRegBatchBlock, 0);
    burstOutPos_ = 0;
    for (uint64_t i = 0; i < count; ++i) {
        uint8_t *inBlock = burstIn_.data() + i * regchan::kRegBatchBlock;
        regchan::cryptBatchBlock(slot.aes(), /*response=*/false,
                                 ctrBase + i, inBlock);
        regchan::RegOp op = regchan::decodeBatchOp(inBlock);
        uint8_t opStatus = 0;
        uint64_t data = executeOp(op, opStatus);
        uint8_t *outBlock =
            burstOut_.data() + i * regchan::kRegBatchBlock;
        regchan::encodeBatchResult(opStatus, data, outBlock);
        regchan::cryptBatchBlock(slot.aes(), /*response=*/true,
                                 ctrBase + i, outBlock);
    }
    out_[0] = count;
    out_[2] = regchan::batchMac(slot.macKey,
                                static_cast<uint32_t>(slotId), ctrBase,
                                burstOut_, /*response=*/true);
    secureZero(burstIn_);
    burstIn_.clear();
    ++statBatchOk_;
    statBatchOps_ += count;
    status_ = kSmStatusOk;
}

void
SmLogic::doOpenSession()
{
    uint64_t slotId = in_[0];
    uint64_t nonce = in_[1];
    uint64_t mac = in_[3];

    SessionSlot &base = sessions_[0];
    // Slot 0 is the injected base session and can never be re-opened
    // from the bus; every open is authorized under the CURRENT base
    // MAC key with a strictly increasing per-slot nonce.
    if (slotId == 0 || slotId >= kSmMaxSessions ||
        nonce <= sessions_[slotId].openNonce ||
        mac != regchan::sessionOpenMac(
                   base.macKey, static_cast<uint32_t>(slotId), nonce)) {
        ++statBatchRejected_;
        status_ = kSmStatusRejected;
        return;
    }
    Bytes baseBlock = base.aesKey;
    baseBlock.insert(baseBlock.end(), base.macKey.begin(),
                     base.macKey.end());
    Bytes derived = regchan::deriveSlotSessionKeys(
        baseBlock, static_cast<uint32_t>(slotId), nonce);
    secureZero(baseBlock);

    SessionSlot &slot = sessions_[slotId];
    slot.setAesKey(sliceBytes(derived, 0, 16));
    secureZero(slot.macKey);
    slot.macKey = sliceBytes(derived, 16, 32);
    secureZero(derived);
    slot.lastCtr = 0;
    slot.openNonce = nonce;
    slot.open = true;
    // Fresh keys mean a fresh DMA sequence space for the slot.
    slot.dmaExpectedSeq = 0;
    slot.dmaBuffer.clear();

    out_[0] = slotId;
    out_[1] = nonce + 1;
    status_ = kSmStatusOk;
}

void
SmLogic::doDmaDoorbell()
{
    uint64_t addr = in_[0];
    uint64_t len = in_[1];

    auto reject = [&] {
        ++statDmaRejected_;
        status_ = kSmStatusRejected;
    };

    if (!dram_ || len < dmachan::kDmaHeaderBytes + 8 ||
        len > dmachan::kDmaMaxEncoded) {
        reject();
        return;
    }
    Bytes encoded;
    try {
        encoded = dram_->read(addr, size_t(len));
    } catch (const DeviceError &) {
        reject();
        return;
    }
    dmachan::DmaDescriptor d;
    try {
        d = dmachan::decodeDescriptor(encoded);
    } catch (const SerdeError &) {
        reject();
        return;
    }
    if (d.sessionId >= kSmMaxSessions || !sessions_[d.sessionId].open) {
        reject();
        return;
    }
    SessionSlot &slot = sessions_[d.sessionId];
    // Fail closed on the MAC before looking at anything else the
    // descriptor claims; a forged descriptor never mutates state.
    if (!dmachan::verifyDescriptorMac(slot.macKey, encoded)) {
        reject();
        return;
    }
    // The counter stride is pinned to the sequence number, so strides
    // across applied descriptors are strictly increasing and a replay
    // can never line up a fresh keystream.
    if (d.ctrBase != d.seq * dmachan::kDmaCtrStride) {
        reject();
        return;
    }
    // Validate every target range now so applying can never fail
    // half-way through a scatter.
    for (const dmachan::DmaSgEntry &e : d.sg) {
        if (e.addr > dram_->size() || e.len > dram_->size() - e.addr) {
            reject();
            return;
        }
    }
    if (d.read) {
        size_t respLen = d.sgBytes() + dmachan::kDmaRespOverhead;
        if (d.respAddr > dram_->size() ||
            respLen > dram_->size() - d.respAddr) {
            reject();
            return;
        }
    }
    // Sync only ever jumps the window forward: a replayed sync
    // descriptor (old seq) cannot rewind it.
    if (d.sync) {
        if (d.seq < slot.dmaExpectedSeq) {
            reject();
            return;
        }
        slot.dmaExpectedSeq = d.seq;
        slot.dmaBuffer.clear();
    }
    if (d.seq < slot.dmaExpectedSeq ||                       // replayed
        d.seq >= slot.dmaExpectedSeq + dmachan::kDmaMaxWindow ||
        slot.dmaBuffer.count(d.seq) != 0) {                  // duplicate
        reject();
        return;
    }
    slot.dmaBuffer.emplace(d.seq, std::move(d));
    // Apply the in-order prefix; anything still out of order stays
    // buffered until the missing descriptor is retransmitted.
    for (auto it = slot.dmaBuffer.find(slot.dmaExpectedSeq);
         it != slot.dmaBuffer.end();
         it = slot.dmaBuffer.find(slot.dmaExpectedSeq)) {
        applyDmaDescriptor(slot, it->second.sessionId, it->second);
        slot.dmaBuffer.erase(it);
        ++slot.dmaExpectedSeq;
    }
    ++statDmaOk_;
    out_[0] = slot.dmaExpectedSeq;
    status_ = kSmStatusOk;
}

void
SmLogic::applyDmaDescriptor(SessionSlot &slot, uint32_t slotId,
                            dmachan::DmaDescriptor &d)
{
    if (d.read) {
        Bytes plain;
        plain.reserve(d.sgBytes());
        for (const dmachan::DmaSgEntry &e : d.sg) {
            Bytes part = dram_->read(e.addr, e.len);
            plain.insert(plain.end(), part.begin(), part.end());
        }
        Bytes blob = dmachan::sealReadResponse(
            slot.aes(), slot.macKey, slotId, d.seq, d.ctrBase, plain);
        dram_->write(d.respAddr, blob);
        secureZero(plain);
        statDmaBytes_ += d.sgBytes();
    } else {
        dmachan::cryptDmaPayload(slot.aes(), /*read=*/false, d.ctrBase,
                                 d.payload.data(), d.payload.size());
        size_t off = 0;
        for (const dmachan::DmaSgEntry &e : d.sg) {
            dram_->write(e.addr,
                         ByteView(d.payload.data() + off, e.len));
            off += e.len;
        }
        statDmaBytes_ += d.payload.size();
        secureZero(d.payload);
    }
}

void
SmLogic::doDmaAck()
{
    uint64_t slotId = in_[0];
    if (slotId >= kSmMaxSessions || !sessions_[slotId].open) {
        ++statDmaRejected_;
        status_ = kSmStatusRejected;
        return;
    }
    const SessionSlot &slot = sessions_[slotId];
    out_[0] = slot.dmaExpectedSeq;
    out_[1] = dmachan::ackMac(slot.macKey,
                              static_cast<uint32_t>(slotId),
                              slot.dmaExpectedSeq);
    status_ = kSmStatusOk;
}

void
SmLogic::registerIp()
{
    static bool done = [] {
        fpga::IpCatalog::global().registerIp(
            fpga::kIpSmLogic,
            [](const netlist::Cell &cell, const netlist::Netlist &design,
               const fpga::FabricServices &services) {
                return std::make_unique<SmLogic>(cell, design, services);
            });
        return true;
    }();
    (void)done;
}

} // namespace salus::core
