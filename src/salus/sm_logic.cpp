#include "salus/sm_logic.hpp"

#include "common/errors.hpp"
#include "common/serde.hpp"
#include "salus/reg_channel.hpp"
#include "salus/secrets.hpp"

namespace salus::core {

SmLogic::SmLogic(const netlist::Cell &cell,
                 const netlist::Netlist &design,
                 const fpga::FabricServices &services)
    : dna_(services.dna.value)
{
    // The params blob wired in by the CL builder names our secret
    // BRAMs and our downstream accelerator.
    BinaryReader r(cell.params);
    std::string keyAttestPath = r.readString();
    std::string keySessionPath = r.readString();
    std::string ctrSessionPath = r.readString();
    accelPath_ = r.readString();

    auto bramInit = [&](const std::string &path,
                        size_t expectedSize) -> Bytes {
        const netlist::Cell *bram = design.findCell(path);
        if (!bram || bram->kind != netlist::CellKind::Bram ||
            bram->init.size() != expectedSize) {
            throw DeviceError("SM logic: missing secret BRAM " + path);
        }
        return bram->init;
    };

    keyAttest_ = bramInit(keyAttestPath, kKeyAttestSize);
    Bytes session = bramInit(keySessionPath, kKeySessionSize);
    sessionAesKey_ = sliceBytes(session, 0, 16);
    sessionMacKey_ = sliceBytes(session, 16, 32);
    Bytes ctr = bramInit(ctrSessionPath, kCtrSessionSize);
    lastCtr_ = loadLe64(ctr.data());
    secureZero(session);
}

void
SmLogic::connect(fpga::LoadedDesign &design)
{
    accel_ = design.behaviorAt(accelPath_);
}

void
SmLogic::reset()
{
    status_ = kSmStatusIdle;
    for (auto &v : in_)
        v = 0;
    for (auto &v : out_)
        v = 0;
}

uint64_t
SmLogic::readRegister(uint32_t addr)
{
    switch (addr) {
      case kSmRegStatus:
        return status_;
      case kSmRegOut0:
        return out_[0];
      case kSmRegOut1:
        return out_[1];
      case kSmRegOut2:
        return out_[2];
      case kSmRegOut2 + 8:
        return out_[3];
      case kSmRegStatAttestOk:
        return statAttestOk_;
      case kSmRegStatAttestRejected:
        return statAttestRejected_;
      case kSmRegStatRegOpOk:
        return statRegOpOk_;
      case kSmRegStatRegOpRejected:
        return statRegOpRejected_;
      case kSmRegStatHeartbeatOk:
        return statHeartbeatOk_;
      case kSmRegStatHeartbeatRejected:
        return statHeartbeatRejected_;
      default:
        // Secrets and inputs are never readable from the bus.
        return 0;
    }
}

void
SmLogic::writeRegister(uint32_t addr, uint64_t value)
{
    switch (addr) {
      case kSmRegCmd:
        execute(value);
        break;
      case kSmRegIn0:
        in_[0] = value;
        break;
      case kSmRegIn1:
        in_[1] = value;
        break;
      case kSmRegIn2:
        in_[2] = value;
        break;
      case kSmRegIn3:
        in_[3] = value;
        break;
      default:
        break;
    }
}

void
SmLogic::execute(uint64_t cmd)
{
    for (auto &v : out_)
        v = 0;
    switch (cmd) {
      case kSmCmdAttest:
        doAttest();
        break;
      case kSmCmdSecureReg:
        doSecureReg();
        break;
      case kSmCmdRekey:
        doRekey();
        break;
      case kSmCmdHeartbeat:
        doHeartbeat();
        break;
      default:
        status_ = kSmStatusRejected;
        break;
    }
}

void
SmLogic::doAttest()
{
    // Fig. 4a, prover side: verify MAC_req over (N, DNA') with the
    // local DNA read from the DNA port, then answer with MAC_rsp over
    // (N + 1, DNA'). A wrong MAC produces no response material at all.
    uint64_t nonce = in_[0];
    uint64_t macReq = in_[1];

    uint64_t expect = regchan::attestRequestMac(keyAttest_, nonce, dna_);
    if (macReq != expect) {
        ++statAttestRejected_;
        status_ = kSmStatusRejected;
        return;
    }
    out_[0] = nonce + 1;
    out_[1] = regchan::attestResponseMac(keyAttest_, nonce, dna_);
    ++statAttestOk_;
    status_ = kSmStatusOk;
}

void
SmLogic::doHeartbeat()
{
    // Liveness probe: same trust anchor as attestation (Key_attest),
    // but cheap enough to poll. The response binds a monotone beat
    // count so a recorded "alive" cannot be replayed later.
    uint64_t nonce = in_[0];
    uint64_t macReq = in_[1];

    if (macReq != regchan::heartbeatRequestMac(keyAttest_, nonce, dna_)) {
        ++statHeartbeatRejected_;
        status_ = kSmStatusRejected;
        return;
    }
    uint64_t count = ++statHeartbeatOk_;
    out_[0] = nonce + 1;
    out_[1] = count;
    out_[2] =
        regchan::heartbeatResponseMac(keyAttest_, nonce, dna_, count);
    status_ = kSmStatusOk;
}

void
SmLogic::doRekey()
{
    uint64_t ctr = in_[0];
    uint64_t nonce = in_[1];
    uint64_t mac = in_[3];

    if (ctr <= lastCtr_ ||
        mac != regchan::rekeyMac(sessionMacKey_, ctr, nonce)) {
        ++statRegOpRejected_;
        status_ = kSmStatusRejected;
        return;
    }
    lastCtr_ = ctr;
    auto [aes, macKey] = regchan::deriveRekeyedKeys(sessionMacKey_, nonce);
    secureZero(sessionAesKey_);
    secureZero(sessionMacKey_);
    sessionAesKey_ = std::move(aes);
    sessionMacKey_ = std::move(macKey);
    ++statRegOpOk_;
    status_ = kSmStatusOk;
}

void
SmLogic::doSecureReg()
{
    regchan::SealedRegRequest req;
    req.ctr = in_[0];
    req.ct0 = in_[1];
    req.ct1 = in_[2];
    req.mac = in_[3];

    // Freshness: the session counter must strictly increase. A replay
    // of an earlier (valid) transaction fails here.
    if (req.ctr <= lastCtr_) {
        ++statRegOpRejected_;
        status_ = kSmStatusRejected;
        return;
    }
    auto op = regchan::openRequest(sessionAesKey_, sessionMacKey_, req);
    if (!op) {
        ++statRegOpRejected_;
        status_ = kSmStatusRejected;
        return;
    }
    lastCtr_ = req.ctr;

    uint8_t opStatus = 0;
    uint64_t data = 0;
    if (!accel_) {
        opStatus = 2; // no accelerator behind us
    } else if (op->isWrite) {
        accel_->writeRegister(op->addr, op->data);
    } else {
        data = accel_->readRegister(op->addr);
    }

    regchan::SealedRegResponse rsp = regchan::sealResponse(
        sessionAesKey_, sessionMacKey_, req.ctr, opStatus, data);
    out_[0] = rsp.ct0;
    out_[1] = rsp.ct1;
    out_[2] = rsp.mac;
    ++statRegOpOk_;
    status_ = kSmStatusOk;
}

void
SmLogic::registerIp()
{
    static bool done = [] {
        fpga::IpCatalog::global().registerIp(
            fpga::kIpSmLogic,
            [](const netlist::Cell &cell, const netlist::Netlist &design,
               const fpga::FabricServices &services) {
                return std::make_unique<SmLogic>(cell, design, services);
            });
        return true;
    }();
    (void)done;
}

} // namespace salus::core
