#include "salus/user_enclave.hpp"

#include "common/errors.hpp"
#include "common/log.hpp"
#include "common/serde.hpp"
#include "crypto/aes_gcm.hpp"
#include "crypto/sha256.hpp"
#include "crypto/x25519.hpp"
#include "obs/trace.hpp"
#include "salus/sm_enclave.hpp"

namespace salus::core {

namespace {

const char *const kDirUp = "salus-chan-u2s";
const char *const kDirDown = "salus-chan-s2u";

} // namespace

Bytes
RaRequest::serialize() const
{
    BinaryWriter w;
    w.writeBytes(clientNonce);
    w.writeBytes(metadata);
    return w.take();
}

RaRequest
RaRequest::deserialize(ByteView data)
{
    BinaryReader r(data);
    RaRequest req;
    req.clientNonce = r.readBytes();
    req.metadata = r.readBytes();
    return req;
}

Bytes
RaResponse::serialize() const
{
    BinaryWriter w;
    w.writeBytes(quote);
    w.writeBytes(wrapPubKey);
    w.writeU8(clAttested);
    w.writeU8(laAttested);
    w.writeString(failure);
    w.writeU8(retryable);
    return w.take();
}

RaResponse
RaResponse::deserialize(ByteView data)
{
    BinaryReader r(data);
    RaResponse resp;
    resp.quote = r.readBytes();
    resp.wrapPubKey = r.readBytes();
    resp.clAttested = r.readU8();
    resp.laAttested = r.readU8();
    resp.failure = r.readString();
    resp.retryable = r.readU8();
    return resp;
}

Bytes
cascadedReportData(ByteView clientNonce, ByteView metadataDigest,
                   const tee::Measurement &smMeasurement, bool laOk,
                   bool clOk, ByteView wrapPubKey)
{
    uint8_t flags[2] = {uint8_t(laOk ? 1 : 0), uint8_t(clOk ? 1 : 0)};
    return crypto::Sha256::digest(concatBytes(
        {bytesFromString("salus-cascaded-v1"), clientNonce,
         metadataDigest, smMeasurement, ByteView(flags, 2), wrapPubKey}));
}

tee::EnclaveImage
UserEnclaveApp::defaultImage()
{
    tee::EnclaveImage image;
    image.name = "user-app";
    image.signer = "example-developer";
    image.isvSvn = 1;
    image.code = bytesFromString(
        "example user enclave v1.0: data decryption + accelerator "
        "driver");
    return image;
}

UserEnclaveApp::UserEnclaveApp(tee::TeePlatform &platform,
                               tee::EnclaveImage image,
                               tee::Measurement expectedSm,
                               SmTransport transport, SimHooks sim)
    : tee::Enclave(platform, std::move(image)),
      expectedSm_(std::move(expectedSm)), transport_(std::move(transport)),
      sim_(sim)
{
}

Bytes
UserEnclaveApp::channelRoundtrip(ByteView plainRequest)
{
    uint64_t seq = ++channelSeq_;
    Bytes sealed =
        channelSeal(la_->session().key, kDirUp, seq, plainRequest);
    Bytes sealedResponse = transport_.channel(sealed);
    auto plain = channelOpen(la_->session().key, kDirDown, seq,
                             sealedResponse);
    return plain ? *plain : Bytes();
}

Bytes
UserEnclaveApp::handleRaRequest(ByteView request)
{
    obs::Span span(obs::Category::Attestation, "ra_request");
    obs::count("attestation.ra_requests");
    RaResponse resp;
    RaRequest req;
    try {
        req = RaRequest::deserialize(request);
    } catch (const SalusError &) {
        // The client never sends garbage; this is corruption (or
        // tampering) in flight, and a fresh request may get through.
        resp.failure = "malformed RA request";
        resp.retryable = 1;
        return resp.serialize();
    }

    ClMetadata metadata;
    try {
        metadata = ClMetadata::deserialize(req.metadata);
    } catch (const SalusError &) {
        resp.failure = "malformed CL metadata";
        resp.retryable = 1;
        return resp.serialize();
    }

    // --- ③ Local attestation of the SM enclave ----------------------
    {
        obs::Span sub(obs::Category::Attestation, "local_attest");
        PhaseScope phase(sim_, phases::kLocalAttest);
        if (sim_.active()) {
            sim_.spend(phases::kLocalAttest,
                       sim_.cost->localAttestation());
        }
        // Fresh LA session => fresh channel sequence space (the peer
        // may be a restarted SM instance expecting seq 1).
        channelSeq_ = 0;
        la_ = std::make_unique<tee::LocalAttestInitiator>(*this,
                                                          expectedSm_);
        Bytes msg2 = transport_.la1(la_->start());
        auto msg3 = la_->finish(msg2);
        if (!msg3 || !transport_.la3(*msg3)) {
            // Either a wrong SM (terminal after bounded attempts) or
            // a garbled LA message; a fresh LA run resolves the
            // latter and can never admit the former.
            resp.failure = "SM enclave local attestation failed";
            resp.retryable = 1;
            return resp.serialize();
        }
        laOk_ = true;
    }

    // --- forward metadata over the sealed channel --------------------
    {
        obs::Span sub(obs::Category::Attestation, "forward_metadata");
        BinaryWriter w;
        w.writeU8(uint8_t(SmChannelMsg::SetMetadata));
        w.writeBytes(metadata.serialize());
        Bytes ack = channelRoundtrip(w.data());
        if (ack.empty() || ack[0] != 1) {
            resp.failure = "metadata transfer to SM enclave failed";
            resp.retryable = 1;
            return resp.serialize();
        }
    }

    // --- ④..⑦ secure boot + CL attestation, SM-driven ---------------
    ClBootStatus boot;
    {
        BinaryWriter w;
        w.writeU8(uint8_t(SmChannelMsg::RunSecureBoot));
        Bytes raw = channelRoundtrip(w.data());
        if (raw.empty()) {
            resp.failure = "secure boot channel failure";
            resp.retryable = 1;
            return resp.serialize();
        }
        try {
            boot = ClBootStatus::deserialize(raw);
        } catch (const SalusError &) {
            resp.failure = "malformed boot status";
            resp.retryable = 1;
            return resp.serialize();
        }
    }

    // --- ⑧ deferred RA report generation (cascaded attestation) ------
    {
        obs::Span sub(obs::Category::Attestation, "cascaded_report");
        PhaseScope phase(sim_, phases::kUserRa);
        if (sim_.active()) {
            sim_.spend(phases::kUserRa,
                       sim_.cost->quoteGeneration +
                           2 * sim_.cost->enclaveTransition);
        }
        crypto::X25519KeyPair wrap = crypto::x25519Generate(rng());
        wrapPriv_ = wrap.privateKey;
        wrapPub_ = wrap.publicKey;

        Bytes reportData = cascadedReportData(
            req.clientNonce, metadata.digest(), expectedSm_, laOk_,
            boot.ok(), wrapPub_);
        tee::Quote quote = createQuote(reportData);

        resp.quote = quote.serialize();
        resp.wrapPubKey = wrapPub_;
        resp.laAttested = laOk_ ? 1 : 0;
        resp.clAttested = boot.ok() ? 1 : 0;
        resp.failure = boot.ok() ? "" : boot.failure;
    }
    return resp.serialize();
}

bool
UserEnclaveApp::acceptDataKey(ByteView sealedDataKey)
{
    if (wrapPriv_.empty())
        return false;
    try {
        BinaryReader r(sealedDataKey);
        Bytes clientEph = r.readBytes();
        Bytes iv = r.readBytes();
        Bytes ct = r.readBytes();
        Bytes tag = r.readBytes();

        Bytes wrapKey = crypto::deriveSessionKey(
            wrapPriv_, clientEph, "salus-datakey-v1", 32);
        crypto::AesGcm gcm(wrapKey);
        secureZero(wrapKey);
        auto key = gcm.open(iv, ByteView(), ct, tag);
        if (!key)
            return false;
        dataKey_ = std::move(*key);
        return true;
    } catch (const SalusError &) {
        return false;
    }
}

std::optional<uint64_t>
UserEnclaveApp::secureRead(uint32_t addr)
{
    if (!laOk_)
        return std::nullopt;
    BinaryWriter w;
    w.writeU8(uint8_t(SmChannelMsg::SecureRegOp));
    w.writeU8(0);
    w.writeU32(addr);
    w.writeU64(0);
    Bytes raw = channelRoundtrip(w.data());
    if (raw.size() != 9 || raw[0] != 0)
        return std::nullopt;
    return loadLe64(raw.data() + 1);
}

bool
UserEnclaveApp::secureWrite(uint32_t addr, uint64_t data)
{
    if (!laOk_)
        return false;
    BinaryWriter w;
    w.writeU8(uint8_t(SmChannelMsg::SecureRegOp));
    w.writeU8(1);
    w.writeU32(addr);
    w.writeU64(data);
    Bytes raw = channelRoundtrip(w.data());
    return raw.size() == 9 && raw[0] == 0;
}

bool
UserEnclaveApp::attachToPlatform()
{
    obs::Span span(obs::Category::Attestation, "attach_to_platform");
    // Tenant peers join an already-booted platform: LA the SM enclave
    // (pinning the published measurement), then confirm the CL is up.
    {
        obs::Span sub(obs::Category::Attestation, "local_attest");
        PhaseScope phase(sim_, phases::kLocalAttest);
        if (sim_.active()) {
            sim_.spend(phases::kLocalAttest,
                       sim_.cost->localAttestation());
        }
        channelSeq_ = 0;
        la_ = std::make_unique<tee::LocalAttestInitiator>(*this,
                                                          expectedSm_);
        Bytes msg2 = transport_.la1(la_->start());
        auto msg3 = la_->finish(msg2);
        if (!msg3 || !transport_.la3(*msg3))
            return false;
        laOk_ = true;
    }
    BinaryWriter w;
    w.writeU8(uint8_t(SmChannelMsg::QueryStatus));
    Bytes raw = channelRoundtrip(w.data());
    if (raw.empty())
        return false;
    try {
        return ClBootStatus::deserialize(raw).ok();
    } catch (const SalusError &) {
        return false;
    }
}

std::vector<regchan::BatchResult>
UserEnclaveApp::secureBatch(const std::vector<regchan::RegOp> &ops)
{
    std::vector<regchan::BatchResult> results;
    if (!laOk_ || ops.empty())
        return results;
    BinaryWriter w;
    w.writeU8(uint8_t(SmChannelMsg::SecureRegBatch));
    w.writeU32(uint32_t(ops.size()));
    for (const regchan::RegOp &op : ops) {
        w.writeU8(op.isWrite ? 1 : 0);
        w.writeU32(op.addr);
        w.writeU64(op.data);
    }
    Bytes raw = channelRoundtrip(w.data());
    try {
        BinaryReader r(raw);
        uint32_t count = r.readU32();
        if (count != ops.size())
            return results;
        results.reserve(count);
        for (uint32_t i = 0; i < count; ++i) {
            regchan::BatchResult res;
            res.status = r.readU8();
            res.data = r.readU64();
            results.push_back(res);
        }
    } catch (const SalusError &) {
        results.clear();
    }
    return results;
}

bool
UserEnclaveApp::rekeySession()
{
    if (!laOk_)
        return false;
    BinaryWriter w;
    w.writeU8(uint8_t(SmChannelMsg::RekeySession));
    Bytes raw = channelRoundtrip(w.data());
    return raw.size() == 1 && raw[0] == 1;
}

bool
UserEnclaveApp::pushDataKeyToCl(uint32_t baseAddr)
{
    if (dataKey_.size() < 32)
        return false;
    for (int i = 0; i < 4; ++i) {
        uint64_t word = loadLe64(dataKey_.data() + 8 * i);
        if (!secureWrite(baseAddr + 8 * i, word))
            return false;
    }
    return true;
}

} // namespace salus::core
