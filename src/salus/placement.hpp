/**
 * @file
 * Fleet placement and live-migration messages (extension beyond the
 * paper's single-device prototype).
 *
 * `Placement` assigns logical sessions to pool devices with seeded
 * power-of-two-choices: two candidate devices are drawn from a
 * deterministic hash of the session id and the lesser-loaded one
 * wins, which keeps the fleet balanced without global coordination.
 * Everything is seeded and deterministic, so two same-seed runs place
 * identically (the sim's replay contract).
 *
 * `MigrationTicket` is the SM enclave's signed authorization to move
 * the active session between pool devices. It is MAC'd under the
 * CURRENT deployment's Key_attest and binds the fingerprint of the
 * secrets being retired: once the migration commits (or any other
 * event retires the source secrets), the ticket is dead — it cannot
 * be replayed to bounce the session a second time.
 *
 * `MigrationRecord` is the audit evidence of one completed migration,
 * mirroring FailoverRecord.
 */

#ifndef SALUS_SALUS_PLACEMENT_HPP
#define SALUS_SALUS_PLACEMENT_HPP

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/bytes.hpp"

namespace salus::core {

/** Signed authorization to move the active session to another pool
 *  device. Issued and verified by the SM enclave; the supervisor only
 *  transports it, so a malicious supervisor cannot fabricate one. */
struct MigrationTicket
{
    uint32_t fromDevice = 0;
    uint32_t toDevice = 0;
    uint64_t fromDna = 0; ///< DeviceDNA of the source
    uint64_t toDna = 0;   ///< DeviceDNA of the target
    uint64_t nonce = 0;   ///< freshness (one commit per ticket)
    /** Fingerprint of the secrets the commit retires: ties the ticket
     *  to exactly one deployment epoch. */
    Bytes sourceFingerprint;
    uint64_t mac = 0; ///< SipHash under the current Key_attest

    Bytes serialize() const;
    /** @throws SerdeError on truncation or implausible fields
     *  (fuzz-hardened: the untrusted host relays these). */
    static MigrationTicket deserialize(ByteView data);
};

/** Audit record of one completed live migration. */
struct MigrationRecord
{
    uint32_t fromDevice = 0;
    uint32_t toDevice = 0;
    uint64_t atNanos = 0; ///< virtual time the migration started
    std::string reason;
    Bytes oldFingerprint; ///< retired secrets of the source device
    Bytes newFingerprint; ///< fresh secrets on the target
    uint8_t attested = 0; ///< cascaded attestation re-ran and passed
    uint64_t parkedOps = 0; ///< ops held parked through the move

    Bytes serialize() const;
    static MigrationRecord deserialize(ByteView data);
};

/** Deterministic power-of-two-choices session placement with
 *  per-device load accounting. */
class Placement
{
  public:
    /** Hard bounds the (fuzz-hardened) state serde enforces. */
    static constexpr uint32_t kMaxDevices = 4096;
    static constexpr size_t kMaxSessions = 65536;

    explicit Placement(uint32_t deviceCount, uint64_t seed = 0);

    /** Assigns a session to the lesser-loaded of two seeded-hash
     *  candidate devices and records the load.
     *  @throws MigrationError when no eligible device remains. */
    uint32_t place(uint64_t sessionId);

    /** Re-assigns an already-placed session via the same
     *  power-of-two-choices draw over the currently eligible devices
     *  (used when its device drains for upgrade).
     *  @return the new device.
     *  @throws MigrationError when no eligible device remains or the
     *          session was never placed. */
    uint32_t migrate(uint64_t sessionId);

    /** Drops a session and its load accounting. Idempotent. */
    void release(uint64_t sessionId);

    /** The two-choice draw without recording anything — what place()
     *  WOULD pick right now. @throws MigrationError when no eligible
     *  device remains. */
    uint32_t pickTarget(uint64_t sessionId) const;

    /** Marks a device (in)eligible for new placements (drained for a
     *  rolling upgrade, quarantined, ...). Existing assignments stay
     *  until migrated. */
    void setEligible(uint32_t device, bool eligible);
    bool eligible(uint32_t device) const;

    /** True when `sessionId` is currently placed. */
    bool placed(uint64_t sessionId) const;
    /** Device currently serving a placed session.
     *  @throws SalusError when the session was never placed. */
    uint32_t deviceOf(uint64_t sessionId) const;
    /** Sessions currently assigned to one device. */
    std::vector<uint64_t> sessionsOn(uint32_t device) const;
    /** Assigned-session count per device. */
    uint32_t load(uint32_t device) const;
    uint32_t deviceCount() const { return deviceCount_; }
    size_t sessionCount() const { return assignments_.size(); }

    /** Serializable placement state (assignments + eligibility), so a
     *  restarted supervisor adopts the fleet view instead of
     *  re-placing every session. */
    Bytes serializeState() const;
    /** @throws SerdeError on truncation, bad magic, out-of-range
     *  devices or duplicate sessions (fuzz-hardened: the state lives
     *  in untrusted host storage). */
    static Placement deserializeState(ByteView data);

  private:
    uint32_t chooseTarget(uint64_t sessionId) const;

    uint32_t deviceCount_ = 0;
    uint64_t seed_ = 0;
    std::vector<uint8_t> eligible_; ///< one flag per device
    std::vector<uint32_t> loads_;   ///< assigned sessions per device
    std::map<uint64_t, uint32_t> assignments_;
};

} // namespace salus::core

#endif // SALUS_SALUS_PLACEMENT_HPP
