#include "salus/broker.hpp"

#include <algorithm>

#include "common/serde.hpp"
#include "obs/trace.hpp"

namespace salus::core {

namespace {

/** Wire magic + version for BrokerRequest (PROTOCOLS.md §19). */
constexpr uint16_t kBrokerMagic = 0xb50c;
constexpr uint8_t kBrokerVersion = 1;

void
countTenant(uint32_t id, const char *counter, uint64_t delta = 1)
{
    if (auto *m = obs::metrics())
        m->add("broker.tenant" + std::to_string(id) + "." + counter,
               delta);
}

} // namespace

Bytes
BrokerRequest::serialize() const
{
    BinaryWriter w;
    w.writeU16(kBrokerMagic);
    w.writeU8(kBrokerVersion);
    w.writeU8(uint8_t(kind));
    w.writeU32(tenant);
    w.writeU32(session);
    if (kind == Kind::SubmitOp) {
        w.writeU8(op.isWrite ? 1 : 0);
        w.writeU32(op.addr);
        w.writeU64(op.data);
    }
    return w.take();
}

BrokerRequest
BrokerRequest::deserialize(ByteView data)
{
    BinaryReader r(data);
    if (r.readU16() != kBrokerMagic)
        throw SerdeError("broker request: bad magic");
    if (r.readU8() != kBrokerVersion)
        throw SerdeError("broker request: unsupported version");
    uint8_t kind = r.readU8();
    if (kind < uint8_t(Kind::OpenSession) ||
        kind > uint8_t(Kind::CloseSession))
        throw SerdeError("broker request: unknown kind");
    BrokerRequest req;
    req.kind = Kind(kind);
    req.tenant = r.readU32();
    req.session = r.readU32();
    if (req.kind == Kind::SubmitOp) {
        uint8_t rw = r.readU8();
        if (rw > 1)
            throw SerdeError("broker request: bad op direction");
        req.op.isWrite = rw == 1;
        req.op.addr = r.readU32();
        req.op.data = r.readU64();
    }
    if (!r.atEnd())
        throw SerdeError("broker request: trailing bytes");
    return req;
}

Broker::Broker(Testbed &tb) : Broker(tb, Config()) {}

Broker::Broker(Testbed &tb, Config config)
    : tb_(tb), config_(config)
{
    config_.maxTotalQueuedOps =
        std::max<size_t>(1, config_.maxTotalQueuedOps);
    config_.shedLowWater =
        std::min(config_.shedLowWater, config_.maxTotalQueuedOps - 1);
    config_.maxTotalSessions =
        std::max<uint32_t>(1, config_.maxTotalSessions);
}

uint32_t
Broker::registerTenant(const std::string &name, TenantPolicy policy)
{
    policy.weight = std::clamp<uint32_t>(policy.weight, 1,
                                         kMaxSessionWeight);
    policy.maxSessions = std::max<uint32_t>(1, policy.maxSessions);
    policy.maxQueuedOps = std::max<size_t>(1, policy.maxQueuedOps);
    uint32_t id = uint32_t(tenants_.size()) + 1;
    Tenant t;
    t.name = name;
    t.policy = policy;
    tenants_.emplace(id, std::move(t));
    obs::count("broker.tenants_registered");
    return id;
}

Broker::Tenant &
Broker::tenantRef(uint32_t tenant)
{
    auto it = tenants_.find(tenant);
    if (it == tenants_.end())
        throw SalusError("broker: unknown tenant " +
                         std::to_string(tenant));
    return it->second;
}

const Broker::Tenant &
Broker::tenantRef(uint32_t tenant) const
{
    auto it = tenants_.find(tenant);
    if (it == tenants_.end())
        throw SalusError("broker: unknown tenant " +
                         std::to_string(tenant));
    return it->second;
}

ErrorContext
Broker::policyContext(uint32_t tenant, const char *method) const
{
    return ErrorContext{"tenant-" + std::to_string(tenant), "broker",
                        method, 0};
}

uint32_t
Broker::openSession(uint32_t tenant)
{
    Tenant &t = tenantRef(tenant);
    obs::Span span(obs::Category::Scheduler, "broker_open_session",
                   uint64_t(tenant));
    if (t.sessions.size() >= t.policy.maxSessions) {
        ++t.stats.quotaRejected;
        obs::count("broker.quota_rejected");
        countTenant(tenant, "quota_rejected");
        throw QuotaExceeded("tenant '" + t.name + "' at max sessions (" +
                                std::to_string(t.policy.maxSessions) +
                                ")",
                            policyContext(tenant, "open-session"));
    }
    if (openSessions() >= config_.maxTotalSessions) {
        ++t.stats.shedRejected;
        obs::count("broker.overloaded_rejected");
        countTenant(tenant, "shed_rejected");
        throw Overloaded("session table full (" +
                             std::to_string(config_.maxTotalSessions) +
                             " open)",
                         policyContext(tenant, "open-session"));
    }
    uint32_t peer = tb_.addUserSession();
    if (!tb_.userApp(peer).attachToPlatform())
        throw SalusError("broker: session " + std::to_string(peer) +
                         " failed to attach to the platform");
    tb_.scheduler().setWeight(peer, t.policy.weight);
    t.sessions.push_back(peer);
    ++t.stats.sessionsOpened;
    sessionTenant_[peer] = tenant;
    sessionClosed_[peer] = false;
    obs::count("broker.sessions_opened");
    countTenant(tenant, "sessions_opened");
    return peer;
}

void
Broker::closeSession(uint32_t tenant, uint32_t session)
{
    Tenant &t = tenantRef(tenant);
    auto owner = sessionTenant_.find(session);
    if (owner == sessionTenant_.end() || owner->second != tenant)
        throw SalusError("broker: session " + std::to_string(session) +
                         " is not open for tenant " +
                         std::to_string(tenant));
    auto it = std::find(t.sessions.begin(), t.sessions.end(), session);
    if (it == t.sessions.end())
        throw SalusError("broker: session " + std::to_string(session) +
                         " already closed");
    t.sessions.erase(it);
    sessionClosed_[session] = true;
    obs::count("broker.sessions_closed");
}

void
Broker::takeToken(uint32_t tenantId, Tenant &t)
{
    if (t.policy.ratePerSec == 0)
        return; // unlimited
    uint64_t burst = t.policy.burst ? t.policy.burst
                                    : std::max<uint64_t>(
                                          1, t.policy.ratePerSec);
    // Integer-only refill: one token every tokenCostNs of virtual
    // time, with the refill origin advanced in whole-token steps so
    // no fractional time is ever lost or double counted.
    uint64_t tokenCostNs =
        std::max<uint64_t>(1, uint64_t(sim::kSec) / t.policy.ratePerSec);
    sim::Nanos now = tb_.clock().now();
    if (!t.bucketPrimed) {
        t.tokens = burst;
        t.refillAt = now;
        t.bucketPrimed = true;
    } else if (now > t.refillAt) {
        uint64_t earned = (now - t.refillAt) / tokenCostNs;
        if (earned > 0) {
            t.tokens = std::min(burst, t.tokens + earned);
            t.refillAt += earned * tokenCostNs;
        }
    }
    if (t.tokens == 0) {
        ++t.stats.rateRejected;
        obs::count("broker.rate_rejected");
        countTenant(tenantId, "rate_rejected");
        throw RateLimited("tenant '" + t.name + "' exceeded " +
                              std::to_string(t.policy.ratePerSec) +
                              " ops/s",
                          policyContext(tenantId, "submit"));
    }
    --t.tokens;
}

void
Broker::submit(uint32_t tenant, uint32_t session,
               const regchan::RegOp &op, Completion done)
{
    Tenant &t = tenantRef(tenant);
    auto owner = sessionTenant_.find(session);
    if (owner == sessionTenant_.end() || owner->second != tenant ||
        sessionClosed_.at(session))
        throw SalusError("broker: session " + std::to_string(session) +
                         " is not open for tenant " +
                         std::to_string(tenant));

    // Check order matters: a shed tenant must not burn rate tokens on
    // requests that were never admissible, and a rate-limited tenant
    // must not learn quota state it cannot use.
    if (t.shed) {
        ++t.stats.shedRejected;
        obs::count("broker.overloaded_rejected");
        countTenant(tenant, "shed_rejected");
        throw Overloaded("tenant '" + t.name +
                             "' shed under overload (backlog " +
                             std::to_string(totalQueued()) + ")",
                         policyContext(tenant, "submit"));
    }
    takeToken(tenant, t);
    if (t.queued >= t.policy.maxQueuedOps) {
        ++t.stats.quotaRejected;
        obs::count("broker.quota_rejected");
        countTenant(tenant, "quota_rejected");
        throw QuotaExceeded(
            "tenant '" + t.name + "' at max queued ops (" +
                std::to_string(t.policy.maxQueuedOps) + ")",
            policyContext(tenant, "submit"));
    }

    // Wrap the completion so tenant accounting tracks the op across
    // the scheduler (the broker never drops an admitted op: even a
    // failed-over completion flows back through here).
    Completion wrapped = [this, tenant,
                          done = std::move(done)](uint8_t status,
                                                  uint64_t data) {
        auto it = tenants_.find(tenant);
        if (it != tenants_.end()) {
            if (it->second.queued > 0)
                --it->second.queued;
            ++it->second.stats.completed;
        }
        if (done)
            done(status, data);
    };

    BatchScheduler::Submit verdict =
        tb_.scheduler().submit(session, op, std::move(wrapped));
    switch (verdict) {
      case BatchScheduler::Submit::Accepted:
        ++t.queued;
        ++t.stats.admitted;
        obs::count("broker.admitted");
        countTenant(tenant, "admitted");
        return;
      case BatchScheduler::Submit::Backpressure:
        ++t.stats.quotaRejected;
        obs::count("broker.quota_rejected");
        countTenant(tenant, "quota_rejected");
        throw QuotaExceeded("session " + std::to_string(session) +
                                " queue full",
                            policyContext(tenant, "submit"));
      case BatchScheduler::Submit::UnknownSession:
        break;
    }
    throw SalusError("broker: scheduler lost session " +
                     std::to_string(session));
}

Broker::Response
Broker::handle(const BrokerRequest &req)
{
    Response resp;
    if (!tenants_.count(req.tenant)) {
        resp.status = kBrokerUnknownTenant;
        resp.detail = "unknown tenant " + std::to_string(req.tenant);
        return resp;
    }
    try {
        switch (req.kind) {
          case BrokerRequest::Kind::OpenSession:
            resp.session = openSession(req.tenant);
            return resp;
          case BrokerRequest::Kind::SubmitOp:
            submit(req.tenant, req.session, req.op);
            return resp;
          case BrokerRequest::Kind::CloseSession:
            closeSession(req.tenant, req.session);
            return resp;
        }
        resp.status = kBrokerBadRequest;
        resp.detail = "unknown request kind";
    } catch (const QuotaExceeded &e) {
        resp.status = kBrokerQuotaExceeded;
        resp.detail = e.what();
    } catch (const RateLimited &e) {
        resp.status = kBrokerRateLimited;
        resp.detail = e.what();
    } catch (const Overloaded &e) {
        resp.status = kBrokerOverloaded;
        resp.detail = e.what();
    } catch (const SalusError &e) {
        resp.status = kBrokerBadRequest;
        resp.detail = e.what();
    }
    return resp;
}

void
Broker::updateShedding()
{
    size_t backlog = totalQueued();
    size_t before = shedLevel_;
    if (backlog >= config_.maxTotalQueuedOps &&
        shedLevel_ < tenants_.size()) {
        ++shedLevel_;
        obs::count("broker.shed_level_up");
    } else if (backlog <= config_.shedLowWater && shedLevel_ > 0) {
        --shedLevel_;
        obs::count("broker.shed_level_down");
    }
    if (shedLevel_ == before && backlog < config_.maxTotalQueuedOps)
        return;

    // Shed order: lowest weight first (the cheapest QoS promise is
    // broken first), newest tenant first on ties — deterministic by
    // construction, no wall-clock or hash order anywhere.
    std::vector<std::pair<uint32_t, Tenant *>> order;
    order.reserve(tenants_.size());
    for (auto &[id, t] : tenants_)
        order.push_back({id, &t});
    std::sort(order.begin(), order.end(),
              [](const auto &a, const auto &b) {
                  if (a.second->policy.weight != b.second->policy.weight)
                      return a.second->policy.weight <
                             b.second->policy.weight;
                  return a.first > b.first;
              });
    for (size_t i = 0; i < order.size(); ++i)
        order[i].second->shed = i < shedLevel_;
}

size_t
Broker::pump()
{
    obs::Span span(obs::Category::Scheduler, "broker_pump");
    updateShedding();
    return tb_.scheduler().pumpOnce();
}

size_t
Broker::drainAll()
{
    size_t completed = 0;
    while (totalQueued() > 0) {
        size_t n = pump();
        completed += n;
        if (n == 0)
            break; // quiesced or fully backpressured — never spin
    }
    // A drained backlog readmits everyone on the next ticks; finish
    // the recovery here so callers observe a clean steady state.
    while (shedLevel_ > 0 && totalQueued() <= config_.shedLowWater)
        updateShedding();
    return completed;
}

const TenantStats &
Broker::tenantStats(uint32_t tenant) const
{
    return tenantRef(tenant).stats;
}

const TenantPolicy &
Broker::tenantPolicy(uint32_t tenant) const
{
    return tenantRef(tenant).policy;
}

bool
Broker::tenantShed(uint32_t tenant) const
{
    return tenantRef(tenant).shed;
}

size_t
Broker::queuedFor(uint32_t tenant) const
{
    return tenantRef(tenant).queued;
}

size_t
Broker::totalQueued() const
{
    size_t total = 0;
    for (const auto &[id, t] : tenants_)
        total += t.queued;
    return total;
}

size_t
Broker::openSessions() const
{
    size_t total = 0;
    for (const auto &[id, t] : tenants_)
        total += t.sessions.size();
    return total;
}

uint32_t
Broker::tenantByName(const std::string &name) const
{
    for (const auto &[id, t] : tenants_)
        if (t.name == name)
            return id;
    return 0;
}

} // namespace salus::core
