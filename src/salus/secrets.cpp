#include "salus/secrets.hpp"

#include "crypto/sha256.hpp"

namespace salus::core {

const char *const kKeyAttestCell = "key_attest";
const char *const kKeySessionCell = "key_session";
const char *const kCtrSessionCell = "ctr_session";

ClSecrets
ClSecrets::generate(crypto::RandomSource &rng)
{
    ClSecrets s;
    s.keyAttest = rng.bytes(kKeyAttestSize);
    s.keySession = rng.bytes(kKeySessionSize);
    s.ctrBase = rng.nextU64();
    return s;
}

ByteView
ClSecrets::sessionAesKey() const
{
    return ByteView(keySession.data(), 16);
}

ByteView
ClSecrets::sessionMacKey() const
{
    return ByteView(keySession.data() + 16, 32);
}

Bytes
ClSecrets::ctrBytes() const
{
    Bytes out(kCtrSessionSize);
    storeLe64(out.data(), ctrBase);
    return out;
}

Bytes
ClSecrets::fingerprint() const
{
    Bytes msg;
    msg.reserve(keyAttest.size() + keySession.size() + 8);
    msg.insert(msg.end(), keyAttest.begin(), keyAttest.end());
    msg.insert(msg.end(), keySession.begin(), keySession.end());
    Bytes ctr(8);
    storeLe64(ctr.data(), ctrBase);
    msg.insert(msg.end(), ctr.begin(), ctr.end());
    Bytes fp = crypto::Sha256::digest(msg);
    secureZero(msg); // key bytes transited through the buffer
    return fp;
}

void
ClSecrets::wipe()
{
    secureZero(keyAttest);
    secureZero(keySession);
    ctrBase = 0;
}

} // namespace salus::core
