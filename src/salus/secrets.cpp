#include "salus/secrets.hpp"

namespace salus::core {

const char *const kKeyAttestCell = "key_attest";
const char *const kKeySessionCell = "key_session";
const char *const kCtrSessionCell = "ctr_session";

ClSecrets
ClSecrets::generate(crypto::RandomSource &rng)
{
    ClSecrets s;
    s.keyAttest = rng.bytes(kKeyAttestSize);
    s.keySession = rng.bytes(kKeySessionSize);
    s.ctrBase = rng.nextU64();
    return s;
}

ByteView
ClSecrets::sessionAesKey() const
{
    return ByteView(keySession.data(), 16);
}

ByteView
ClSecrets::sessionMacKey() const
{
    return ByteView(keySession.data() + 16, 32);
}

Bytes
ClSecrets::ctrBytes() const
{
    Bytes out(kCtrSessionSize);
    storeLe64(out.data(), ctrBase);
    return out;
}

void
ClSecrets::wipe()
{
    secureZero(keyAttest);
    secureZero(keySession);
    ctrBase = 0;
}

} // namespace salus::core
