/**
 * @file
 * Fleet supervisor for a pool of Salus FPGA devices.
 *
 * The supervisor is an UNTRUSTED cloud-operator component (like the
 * shell): it decides *availability* — which device serves — but can
 * never influence *security*. Every security-relevant consequence of
 * its decisions is re-derived by the trusted parties: a failover
 * re-runs RoT injection and the full cascaded attestation, and the
 * liveness signal it acts on is MAC'd by the CL under Key_attest, so
 * a malicious supervisor (or shell) can at worst deny service.
 *
 * Mechanics:
 *  - Heartbeat/watchdog: each poll sends a MAC'd liveness probe to
 *    every device (via the SM enclave, which owns Key_attest).
 *  - Per-device health: a sliding-window failure-rate circuit
 *    breaker (fpga::HealthTracker) drives HEALTHY -> DEGRADED ->
 *    QUARANTINED, with probation-based reinstatement.
 *  - Failover: when the active device is quarantined, the session is
 *    re-deployed onto the healthiest spare; the FailoverRecord keeps
 *    the evidence (timing, fingerprints) the tests and benches audit.
 */

#ifndef SALUS_SALUS_SUPERVISOR_HPP
#define SALUS_SALUS_SUPERVISOR_HPP

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/errors.hpp"
#include "fpga/health.hpp"
#include "salus/placement.hpp"
#include "salus/sm_enclave.hpp"
#include "sim/clock.hpp"
#include "sim/fault.hpp"

namespace salus::core {

// ---- Fleet wire messages --------------------------------------------
// The supervisor talks to the SM enclave host over the (simulated)
// cloud network; these frames are what crosses it.

/** Liveness probe request (supervisor -> SM host). */
struct HeartbeatRequest
{
    uint32_t deviceId = 0;
    uint64_t nonce = 0;

    Bytes serialize() const;
    static HeartbeatRequest deserialize(ByteView data);
};

/** Liveness probe response (SM host -> supervisor). */
struct HeartbeatResponse
{
    uint8_t reachable = 0;
    uint8_t authentic = 0;
    uint64_t count = 0;     ///< fabric beat counter
    uint64_t nonceEcho = 0; ///< request nonce + 1
    std::string failure;

    Bytes serialize() const;
    static HeartbeatResponse deserialize(ByteView data);
};

/** Audit record of one completed failover. */
struct FailoverRecord
{
    uint32_t fromDevice = 0;
    uint32_t toDevice = 0;
    uint64_t atNanos = 0; ///< virtual time the failover started
    std::string reason;
    Bytes oldFingerprint; ///< retired secrets of the dead device
    Bytes newFingerprint; ///< fresh secrets on the spare
    uint8_t attested = 0; ///< cascaded attestation re-ran and passed
    uint32_t attempts = 0;

    Bytes serialize() const;
    static FailoverRecord deserialize(ByteView data);
};

/** Wiring between the supervisor and the rest of the testbed. */
struct SupervisorDeps
{
    sim::VirtualClock *clock = nullptr;
    /** Consulted per probe for heartbeat-loss faults. */
    sim::FaultInjector *injector = nullptr;
    uint32_t deviceCount = 1;
    fpga::HealthPolicy health;
    sim::Nanos probePeriod = 10 * sim::kMs;
    /** Probes one device (RPC into the SM enclave host). */
    std::function<SmEnclaveApp::HeartbeatResult(uint32_t)> probe;
    /** Performs the failover (SM device switch + full re-deployment
     *  with cascaded attestation) and reports the evidence. */
    std::function<FailoverRecord(uint32_t from, uint32_t to,
                                 const std::string &reason)>
        failover;
    /** Performs a live migration of the active session (quiesce the
     *  scheduler, commit the MAC'd ticket, re-deploy + re-attest the
     *  target, release the parked queue) and reports the evidence. */
    std::function<MigrationRecord(uint32_t from, uint32_t to,
                                  const std::string &reason)>
        migrate;
    /** Which device currently serves the session. */
    std::function<uint32_t()> activeDevice;
};

/** The watchdog + circuit breaker + failover driver. */
class FleetSupervisor
{
  public:
    explicit FleetSupervisor(SupervisorDeps deps);

    /** One watchdog pass: probe every non-quarantined device, feed
     *  the health trackers, then fail over if the active device got
     *  quarantined. */
    void pollOnce();

    /** Runs the watchdog for a span of virtual time, one poll every
     *  probePeriod. */
    void runFor(sim::Nanos duration);

    /**
     * External failure evidence (e.g. the SM enclave exhausting its
     * retry schedule against a device). Record-only — it arrives from
     * inside the SM's request path, so failover is deferred to the
     * next pollOnce()/guardedOp() at top level.
     */
    void noteDeviceFailure(uint32_t deviceId, const ErrorContext &ctx);

    /**
     * Runs one register-channel operation under failover protection.
     * Returns true when the op committed exactly once. If the op
     * reports failure and the supervisor fails the session over as a
     * consequence, throws FailoverError: the op did NOT observably
     * commit and is never auto-replayed onto the new device — the
     * caller decides whether to re-issue it on the fresh session.
     */
    bool guardedOp(const std::function<bool()> &op,
                   const std::string &what);

    /** Healthiest spare to fail over to (lowest-id healthy device,
     *  falling back to degraded); nullopt when none remains. */
    std::optional<uint32_t> pickSpare() const;

    // ---- Live migration & rolling upgrades --------------------------
    /**
     * Live-migrates the active session to `to` (planned move: load
     * balancing, rolling upgrade). All pre-checks run BEFORE the
     * migration machinery quiesces anything, so on any refusal the
     * session keeps serving on the source untouched.
     * @throws MigrationError on an unusable target (unknown, already
     *         active, quarantined), missing wiring, or a migration
     *         that failed before committing.
     */
    MigrationRecord migrateActiveTo(uint32_t to,
                                    const std::string &reason);

    /**
     * Rolling-upgrade drain of one device: marks it ineligible for
     * placement, live-migrates the real active session away when it
     * is serving there, re-places every logical session assigned to
     * it, then holds it in maintenance quarantine until
     * completeUpgrade(). Degrades gracefully: when the fleet has no
     * remaining capacity (or the live migration fails) eligibility is
     * restored, a MigrationError propagates, and every session keeps
     * serving where it was.
     * @return logical sessions re-placed off the device.
     */
    size_t drainForUpgrade(uint32_t device, Placement &placement,
                           const std::string &reason);

    /** Ends a drained device's maintenance window: the device goes to
     *  PROBATION (earning reinstatement with clean probes) and
     *  becomes placement-eligible again. */
    void completeUpgrade(uint32_t device, Placement &placement);

    /**
     * Forgets the expected-monotone heartbeat floor for a device.
     * Call ONLY when the deployment epoch changed (failover or
     * migration redeployed the device): the fresh SM logic restarts
     * its beat counter at 1, which the kept floor would misread as a
     * replay. The floor is deliberately KEPT across quarantine and
     * probation reinstatement — that is what rejects a stale MAC'd
     * heartbeat captured before the quarantine.
     */
    void resetBeatExpectation(uint32_t deviceId);

    const fpga::HealthTracker &tracker(uint32_t deviceId) const
    {
        return trackers_.at(deviceId);
    }
    fpga::HealthState state(uint32_t deviceId) const
    {
        return trackers_.at(deviceId).state();
    }
    const std::vector<FailoverRecord> &failovers() const
    {
        return failovers_;
    }
    const std::vector<MigrationRecord> &migrations() const
    {
        return migrations_;
    }
    uint64_t polls() const { return polls_; }

    /** Watchdog probe cadence — event-driven drivers schedule their
     *  poll events at this period instead of calling runFor(). */
    sim::Nanos probePeriod() const { return deps_.probePeriod; }

  private:
    void maybeFailover();

    SupervisorDeps deps_;
    std::vector<fpga::HealthTracker> trackers_;
    std::vector<FailoverRecord> failovers_;
    std::vector<MigrationRecord> migrations_;
    /** Highest MAC-verified beat count seen per device. An authentic
     *  active-device response at or below the floor is a replayed
     *  stale heartbeat — treated as a forgery. */
    std::vector<uint64_t> beatFloor_;
    uint64_t polls_ = 0;
    /** Failover re-runs the deployment, which can report failures of
     *  its own; never recurse into a second failover from there. */
    bool failingOver_ = false;
};

} // namespace salus::core

#endif // SALUS_SALUS_SUPERVISOR_HPP
