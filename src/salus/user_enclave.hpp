/**
 * @file
 * The user enclave application (paper Fig. 3 / Fig. 7, left).
 * Developed by the developer, deployed by the data owner; it anchors
 * the cascaded attestation (§4.4):
 *
 *   A remote-attestation request from the user client triggers, in
 *   order: local attestation of the SM enclave, metadata hand-off,
 *   the SM-driven secure CL boot, and the CL attestation — and only
 *   then does this enclave generate its RA quote, with report data
 *   binding the client nonce, the SM measurement, the CL metadata
 *   digest, the boot outcome, and a fresh key-wrap public key. One
 *   round trip attests the whole heterogeneous platform.
 */

#ifndef SALUS_SALUS_USER_ENCLAVE_HPP
#define SALUS_SALUS_USER_ENCLAVE_HPP

#include <functional>

#include "salus/messages.hpp"
#include "salus/reg_channel.hpp"
#include "salus/sim_hooks.hpp"
#include "tee/local_attest.hpp"
#include "tee/platform.hpp"

namespace salus::core {

/** Transport handles into the (co-located) SM application. All of
 *  these run through the untrusted host process. */
struct SmTransport
{
    std::function<Bytes(ByteView)> la1;     ///< msg1 -> msg2
    std::function<bool(ByteView)> la3;      ///< msg3 -> accepted
    std::function<Bytes(ByteView)> channel; ///< sealed req -> sealed rsp
};

/** Serialized RA request from the user client. */
struct RaRequest
{
    Bytes clientNonce;  ///< freshness challenge
    Bytes metadata;     ///< serialized ClMetadata

    Bytes serialize() const;
    static RaRequest deserialize(ByteView data);
};

/** Serialized RA response carrying the cascaded attestation report. */
struct RaResponse
{
    Bytes quote;        ///< serialized tee::Quote
    Bytes wrapPubKey;   ///< enclave X25519 key for the data key
    uint8_t clAttested = 0;
    uint8_t laAttested = 0;
    std::string failure;
    /** Nonzero when the failure is transport-class (garbled request,
     *  channel hiccup) and a fresh attempt may succeed. Security
     *  rejections leave it 0 so the client never retries them. */
    uint8_t retryable = 0;

    Bytes serialize() const;
    static RaResponse deserialize(ByteView data);
};

/** Computes the report-data binding both sides must agree on. */
Bytes cascadedReportData(ByteView clientNonce, ByteView metadataDigest,
                         const tee::Measurement &smMeasurement,
                         bool laOk, bool clOk, ByteView wrapPubKey);

/** The user enclave program. */
class UserEnclaveApp : public tee::Enclave
{
  public:
    /**
     * @param image the developer's enclave build (measured identity).
     * @param expectedSm the published SM enclave measurement to pin.
     */
    UserEnclaveApp(tee::TeePlatform &platform, tee::EnclaveImage image,
                   tee::Measurement expectedSm, SmTransport transport,
                   SimHooks sim = {});

    /** A reasonable default developer image for tests/examples. */
    static tee::EnclaveImage defaultImage();

    /**
     * Untrusted-host entry: handles the client's RA request by
     * running the full cascaded flow. Always returns a response;
     * failures are reported in it (and yield no usable quote).
     */
    Bytes handleRaRequest(ByteView request);

    /**
     * Untrusted-host entry: accepts the client's wrapped data key
     * after successful attestation. @return true when unwrapped.
     */
    bool acceptDataKey(ByteView sealedDataKey);

    /** True once the client's data key has been installed. */
    bool hasDataKey() const { return !dataKey_.empty(); }

    /**
     * Pushes the data key into the accelerator through the secure
     * register channel (the §4.5 usage pattern), as four 64-bit
     * writes starting at `baseAddr`.
     */
    bool pushDataKeyToCl(uint32_t baseAddr);

    /** Secure register ops proxied via the SM enclave (§4.5). */
    std::optional<uint64_t> secureRead(uint32_t addr);
    bool secureWrite(uint32_t addr, uint64_t data);

    /**
     * Tenant attach (extension): runs only the local attestation of
     * the SM enclave plus a status query — no metadata, no boot — for
     * peers joining an already-booted platform. @return true when the
     * LA pinned the expected SM and the CL reports attested.
     */
    bool attachToPlatform();

    /**
     * Sends a burst of register ops over the batched channel in one
     * sealed round trip. @return one result per op, in order; empty on
     * channel failure.
     */
    std::vector<regchan::BatchResult>
    secureBatch(const std::vector<regchan::RegOp> &ops);

    /** Requests a session re-key of the register channel. */
    bool rekeySession();

    /** Data key accessor for trusted in-enclave compute paths. */
    const Bytes &dataKey() const { return dataKey_; }

  private:
    Bytes channelRoundtrip(ByteView plainRequest);

    tee::Measurement expectedSm_;
    SmTransport transport_;
    SimHooks sim_;
    std::unique_ptr<tee::LocalAttestInitiator> la_;
    bool laOk_ = false;
    uint64_t channelSeq_ = 0;
    Bytes wrapPriv_, wrapPub_;
    Bytes dataKey_;
};

} // namespace salus::core

#endif // SALUS_SALUS_USER_ENCLAVE_HPP
