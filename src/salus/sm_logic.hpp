/**
 * @file
 * The SM logic (paper §5.1 / Fig. 5): the manufacturer-released HDK
 * block every Salus CL integrates. Runs in the fabric, fronted by an
 * AXI4-Lite window the shell exposes to the host.
 *
 * Subcomponents mirrored from Fig. 5:
 *  - isolated on-chip BRAM holding Key_attest / Key_session /
 *    Ctr_session, whose init values come from configuration memory —
 *    i.e. from whatever the (manipulated) bitstream carried;
 *  - a SipHash engine + DNA_PORTE2 readout for CL attestation;
 *  - transparent register protection (AES-CTR + HMAC + monotonic
 *    counter) in front of the accelerator's control interface.
 *
 * Register map (byte offsets within the SM window):
 *   0x00 CMD     (w)  1 = attest, 2 = secure register op
 *   0x08 STATUS  (r)  0 idle, 1 ok, 2 rejected
 *   0x10..0x2f   IN0..IN3  operands
 *   0x30..0x4f   OUT0..OUT3 results
 */

#ifndef SALUS_SALUS_SM_LOGIC_HPP
#define SALUS_SALUS_SM_LOGIC_HPP

#include "fpga/device.hpp"

namespace salus::core {

/** SM logic register offsets. */
constexpr uint32_t kSmRegCmd = 0x00;
constexpr uint32_t kSmRegStatus = 0x08;
constexpr uint32_t kSmRegIn0 = 0x10;
constexpr uint32_t kSmRegIn1 = 0x18;
constexpr uint32_t kSmRegIn2 = 0x20;
constexpr uint32_t kSmRegIn3 = 0x28;
constexpr uint32_t kSmRegOut0 = 0x30;
constexpr uint32_t kSmRegOut1 = 0x38;
constexpr uint32_t kSmRegOut2 = 0x40;

/** CMD codes. */
constexpr uint64_t kSmCmdAttest = 1;
constexpr uint64_t kSmCmdSecureReg = 2;
/** Session re-key (extension): roll Key_session forward from a MACed
 *  nonce; see regchan::deriveRekeyedKeys. */
constexpr uint64_t kSmCmdRekey = 3;
/** MAC'd liveness probe (fleet supervision): prove the CL is alive
 *  and still holds this deployment's Key_attest. */
constexpr uint64_t kSmCmdHeartbeat = 4;

/** Read-only diagnostic counters (non-secret, like AXI status regs). */
constexpr uint32_t kSmRegStatAttestOk = 0x80;
constexpr uint32_t kSmRegStatAttestRejected = 0x88;
constexpr uint32_t kSmRegStatRegOpOk = 0x90;
constexpr uint32_t kSmRegStatRegOpRejected = 0x98;
constexpr uint32_t kSmRegStatHeartbeatOk = 0xa0;
constexpr uint32_t kSmRegStatHeartbeatRejected = 0xa8;

/** STATUS values. */
constexpr uint64_t kSmStatusIdle = 0;
constexpr uint64_t kSmStatusOk = 1;
constexpr uint64_t kSmStatusRejected = 2;

/** The fabric-side behaviour implementation. */
class SmLogic : public fpga::IpBehavior
{
  public:
    SmLogic(const netlist::Cell &cell, const netlist::Netlist &design,
            const fpga::FabricServices &services);

    uint64_t readRegister(uint32_t addr) override;
    void writeRegister(uint32_t addr, uint64_t value) override;
    void connect(fpga::LoadedDesign &design) override;
    void reset() override;

    /** Registers the SM logic in the global IP catalog (idempotent). */
    static void registerIp();

  private:
    void execute(uint64_t cmd);
    void doAttest();
    void doSecureReg();
    void doRekey();
    void doHeartbeat();

    // Secrets as configured in BRAM (bitstream-manipulated values).
    Bytes keyAttest_;
    Bytes sessionAesKey_;
    Bytes sessionMacKey_;
    uint64_t lastCtr_ = 0;

    std::string accelPath_;
    fpga::IpBehavior *accel_ = nullptr;
    uint64_t dna_ = 0;

    uint64_t status_ = kSmStatusIdle;
    uint64_t in_[4] = {};
    uint64_t out_[4] = {};

    // Diagnostic counters (bus-readable, non-secret).
    uint64_t statAttestOk_ = 0;
    uint64_t statAttestRejected_ = 0;
    uint64_t statRegOpOk_ = 0;
    uint64_t statRegOpRejected_ = 0;
    uint64_t statHeartbeatOk_ = 0;
    uint64_t statHeartbeatRejected_ = 0;
};

} // namespace salus::core

#endif // SALUS_SALUS_SM_LOGIC_HPP
