/**
 * @file
 * The SM logic (paper §5.1 / Fig. 5): the manufacturer-released HDK
 * block every Salus CL integrates. Runs in the fabric, fronted by an
 * AXI4-Lite window the shell exposes to the host.
 *
 * Subcomponents mirrored from Fig. 5:
 *  - isolated on-chip BRAM holding Key_attest / Key_session /
 *    Ctr_session, whose init values come from configuration memory —
 *    i.e. from whatever the (manipulated) bitstream carried;
 *  - a SipHash engine + DNA_PORTE2 readout for CL attestation;
 *  - transparent register protection (AES-CTR + HMAC + monotonic
 *    counter) in front of the accelerator's control interface.
 *
 * Register map (byte offsets within the SM window):
 *   0x00 CMD     (w)  1 = attest, 2 = secure register op, 3 = rekey,
 *                     4 = heartbeat, 5 = secure batch, 6 = open session
 *   0x08 STATUS  (r)  0 idle, 1 ok, 2 rejected
 *   0x10..0x2f   IN0..IN3  operands
 *   0x30..0x4f   OUT0..OUT3 results
 *   0x50 BURST_IN  (w) append one burst payload word
 *   0x58 BURST_OUT (r) pop one burst response word
 *   0x60 BURST_RESET (w) clear both burst FIFOs
 */

#ifndef SALUS_SALUS_SM_LOGIC_HPP
#define SALUS_SALUS_SM_LOGIC_HPP

#include <array>
#include <map>
#include <memory>

#include "fpga/device.hpp"
#include "fpga/dram.hpp"
#include "salus/dma_channel.hpp"
#include "salus/reg_channel.hpp"

namespace salus::core {

/** SM logic register offsets. */
constexpr uint32_t kSmRegCmd = 0x00;
constexpr uint32_t kSmRegStatus = 0x08;
constexpr uint32_t kSmRegIn0 = 0x10;
constexpr uint32_t kSmRegIn1 = 0x18;
constexpr uint32_t kSmRegIn2 = 0x20;
constexpr uint32_t kSmRegIn3 = 0x28;
constexpr uint32_t kSmRegOut0 = 0x30;
constexpr uint32_t kSmRegOut1 = 0x38;
constexpr uint32_t kSmRegOut2 = 0x40;

// Burst FIFO window (batched register channel). A write to BURST_IN
// appends one 64-bit payload word; a read from BURST_OUT pops the
// next response word; a write to BURST_RESET clears both FIFOs.
constexpr uint32_t kSmRegBurstIn = 0x50;
constexpr uint32_t kSmRegBurstOut = 0x58;
constexpr uint32_t kSmRegBurstReset = 0x60;

/** CMD codes. */
constexpr uint64_t kSmCmdAttest = 1;
constexpr uint64_t kSmCmdSecureReg = 2;
/** Session re-key (extension): roll Key_session forward from a MACed
 *  nonce; see regchan::deriveRekeyedKeys. */
constexpr uint64_t kSmCmdRekey = 3;
/** MAC'd liveness probe (fleet supervision): prove the CL is alive
 *  and still holds this deployment's Key_attest. */
constexpr uint64_t kSmCmdHeartbeat = 4;
/** Batched secure register burst (extension): IN0 = ctrBase, IN1 =
 *  op count, IN2 = session slot, IN3 = burst MAC, payload streamed
 *  through BURST_IN, responses through BURST_OUT. */
constexpr uint64_t kSmCmdSecureBatch = 5;
/** Open a derived session slot (extension): IN0 = slot, IN1 = open
 *  nonce, IN3 = MAC under the base session's MAC key. */
constexpr uint64_t kSmCmdOpenSession = 6;
/** Sealed-DMA-descriptor doorbell (bulk data plane): IN0 = DRAM
 *  staging address of the encoded descriptor, IN1 = encoded length.
 *  OUT0 = the slot's cumulative ack after processing. */
constexpr uint64_t kSmCmdDmaDoorbell = 7;
/** Cumulative DMA ack readback: IN0 = session slot; OUT0 = lowest
 *  sequence number not yet applied, OUT1 = its MAC. */
constexpr uint64_t kSmCmdDmaAck = 8;

/** Session slots the fabric multiplexes (slot 0 = injected base). */
constexpr uint32_t kSmMaxSessions = 8;

/** Read-only diagnostic counters (non-secret, like AXI status regs). */
constexpr uint32_t kSmRegStatAttestOk = 0x80;
constexpr uint32_t kSmRegStatAttestRejected = 0x88;
constexpr uint32_t kSmRegStatRegOpOk = 0x90;
constexpr uint32_t kSmRegStatRegOpRejected = 0x98;
constexpr uint32_t kSmRegStatHeartbeatOk = 0xa0;
constexpr uint32_t kSmRegStatHeartbeatRejected = 0xa8;
constexpr uint32_t kSmRegStatBatchOk = 0xb0;
constexpr uint32_t kSmRegStatBatchRejected = 0xb8;
constexpr uint32_t kSmRegStatBatchOps = 0xc0;
constexpr uint32_t kSmRegStatSessionsOpen = 0xc8;
constexpr uint32_t kSmRegStatDmaOk = 0xd0;
constexpr uint32_t kSmRegStatDmaRejected = 0xd8;
constexpr uint32_t kSmRegStatDmaBytes = 0xe0;

/** STATUS values. */
constexpr uint64_t kSmStatusIdle = 0;
constexpr uint64_t kSmStatusOk = 1;
constexpr uint64_t kSmStatusRejected = 2;

/** The fabric-side behaviour implementation. */
class SmLogic : public fpga::IpBehavior
{
  public:
    SmLogic(const netlist::Cell &cell, const netlist::Netlist &design,
            const fpga::FabricServices &services);

    uint64_t readRegister(uint32_t addr) override;
    void writeRegister(uint32_t addr, uint64_t value) override;
    void connect(fpga::LoadedDesign &design) override;
    void reset() override;

    /** Registers the SM logic in the global IP catalog (idempotent). */
    static void registerIp();

  private:
    /** One multiplexed register-channel session. Slot 0 holds the
     *  BRAM-injected base keys; further slots hold keys derived by
     *  kSmCmdOpenSession. */
    struct SessionSlot
    {
        bool open = false;
        Bytes aesKey;
        Bytes macKey;
        /** Expanded AES key schedule, rebuilt only when the key
         *  changes (construction, open-session, re-key) — every
         *  register/DMA message reuses it instead of re-expanding. */
        std::unique_ptr<crypto::Aes> aesCtx;
        uint64_t lastCtr = 0;
        uint64_t openNonce = 0; ///< strictly increasing per slot
        /** DMA plane: lowest sequence number not yet applied — also
         *  the cumulative ack value the host reads back. */
        uint64_t dmaExpectedSeq = 0;
        /** Bounded reorder buffer for out-of-order but in-window
         *  descriptors (<= dmachan::kDmaMaxWindow entries). */
        std::map<uint64_t, dmachan::DmaDescriptor> dmaBuffer;

        /** Installs a new AES key: zeroes the old one and rebuilds
         *  the cached schedule. */
        void setAesKey(Bytes key);
        const crypto::Aes &aes() const { return *aesCtx; }
    };

    void execute(uint64_t cmd);
    void doAttest();
    void doSecureReg();
    void doSecureBatch();
    void doOpenSession();
    void doRekey();
    void doHeartbeat();
    void doDmaDoorbell();
    void doDmaAck();
    void applyDmaDescriptor(SessionSlot &slot, uint32_t slotId,
                            dmachan::DmaDescriptor &d);
    uint64_t executeOp(const regchan::RegOp &op, uint8_t &opStatus);

    // Secrets as configured in BRAM (bitstream-manipulated values).
    Bytes keyAttest_;
    std::array<SessionSlot, kSmMaxSessions> sessions_;

    std::string accelPath_;
    fpga::IpBehavior *accel_ = nullptr;
    uint64_t dna_ = 0;
    fpga::DeviceDram *dram_ = nullptr; ///< DMA descriptor staging

    uint64_t status_ = kSmStatusIdle;
    uint64_t in_[4] = {};
    uint64_t out_[4] = {};

    // Burst FIFOs for the batched channel (bounded on-chip buffers).
    Bytes burstIn_;
    Bytes burstOut_;
    size_t burstOutPos_ = 0;

    // Diagnostic counters (bus-readable, non-secret).
    uint64_t statAttestOk_ = 0;
    uint64_t statAttestRejected_ = 0;
    uint64_t statRegOpOk_ = 0;
    uint64_t statRegOpRejected_ = 0;
    uint64_t statHeartbeatOk_ = 0;
    uint64_t statHeartbeatRejected_ = 0;
    uint64_t statBatchOk_ = 0;
    uint64_t statBatchRejected_ = 0;
    uint64_t statBatchOps_ = 0;
    uint64_t statDmaOk_ = 0;
    uint64_t statDmaRejected_ = 0;
    uint64_t statDmaBytes_ = 0;
};

} // namespace salus::core

#endif // SALUS_SALUS_SM_LOGIC_HPP
