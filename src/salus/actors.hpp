/**
 * @file
 * Event-driven actors porting the lockstep testbed loops onto the
 * sim::Engine: scheduler pump sweeps, supervisor watchdog polls, and
 * per-device DMA lanes become queued events with the engine's stable
 * (time, priority, seq) ordering, so a fleet of devices makes
 * progress CONCURRENTLY in virtual time instead of serializing on
 * whichever component's synchronous loop ran first.
 *
 * The actors deliberately spend no virtual time themselves: waiting
 * is expressed by scheduling (the clock advances to each event's due
 * time), and work charges time exactly where the lockstep path did —
 * inside the wrapped component. A lockstep call sequence replayed as
 * a same-instant event chain is therefore trace-identical to the
 * original (pinned by test_engine's regression tests).
 */

#ifndef SALUS_SALUS_ACTORS_HPP
#define SALUS_SALUS_ACTORS_HPP

#include <functional>
#include <string>

#include "salus/supervisor.hpp"
#include "sim/cost_model.hpp"
#include "sim/engine.hpp"

namespace salus::core {

/**
 * Scheduler sweeps as events. Each kSweep event runs one pump (the
 * wrapped callback is typically Broker::pump or
 * BatchScheduler::pumpOnce behind the caller's error handling); with
 * startPeriodic() the actor self-reschedules every `period` for a
 * bounded number of sweeps — the event-driven replacement for the
 * lockstep `for (sweep...) pump()` loop.
 */
class SchedulerPumpActor final : public sim::Actor
{
  public:
    static constexpr uint32_t kSweep = 1;

    /** @param pump runs one sweep, returns ops completed. */
    explicit SchedulerPumpActor(std::function<size_t()> pump)
        : pump_(std::move(pump))
    {}

    /** Registers with the engine (idempotent per engine instance). */
    uint32_t attach(sim::Engine &engine, const std::string &name);
    uint32_t actorId() const { return actorId_; }

    /** Schedules `sweeps` self-rescheduling pump events, the first
     *  one `period` from now. */
    void startPeriodic(sim::Engine &engine, sim::Nanos period,
                       uint64_t sweeps);

    void onEvent(sim::Engine &engine, const sim::Event &event) override;

    uint64_t sweeps() const { return sweeps_; }
    uint64_t opsCompleted() const { return ops_; }

  private:
    std::function<size_t()> pump_;
    uint32_t actorId_ = 0;
    sim::Nanos period_ = 0;
    uint64_t remaining_ = 0;
    uint64_t sweeps_ = 0;
    uint64_t ops_ = 0;
};

/**
 * Supervisor watchdog polls as events — the event-driven replacement
 * for FleetSupervisor::runFor's lockstep spend-then-poll loop. Waits
 * between polls are engine-scheduled (untracked idle time), matching
 * the scenario engine's lockstep semantics where pollOnce() runs
 * between sweeps without a heartbeat spend.
 */
class SupervisorPollActor final : public sim::Actor
{
  public:
    static constexpr uint32_t kPoll = 1;

    /** @param onError invoked when pollOnce throws a SalusError
     *  (failover propagation); the exception is swallowed so the
     *  event loop keeps running, exactly like the lockstep drivers'
     *  try/catch. Null = swallow silently. */
    explicit SupervisorPollActor(FleetSupervisor &supervisor,
                                 std::function<void()> onError = nullptr)
        : supervisor_(supervisor), onError_(std::move(onError))
    {}

    uint32_t attach(sim::Engine &engine, const std::string &name);
    uint32_t actorId() const { return actorId_; }

    /** Schedules `polls` self-rescheduling poll events, the first one
     *  `period` from now. */
    void startPeriodic(sim::Engine &engine, sim::Nanos period,
                       uint64_t polls);

    void onEvent(sim::Engine &engine, const sim::Event &event) override;

    uint64_t polls() const { return polls_; }
    uint64_t errors() const { return errors_; }

  private:
    FleetSupervisor &supervisor_;
    std::function<void()> onError_;
    uint32_t actorId_ = 0;
    sim::Nanos period_ = 0;
    uint64_t remaining_ = 0;
    uint64_t polls_ = 0;
    uint64_t errors_ = 0;
};

/**
 * One device's bulk-DMA lane as an event-driven pipeline. The lane
 * reproduces the DmaWindowEngine's sliding-window arithmetic — seal
 * crypto overlapped behind a transport budget (double-buffered
 * keystream precompute), `window` descriptors in flight, cumulative
 * acks one PCIe RTT behind the last wire byte — but on a LANE-LOCAL
 * timeline: wire time and window stalls extend this lane's busy
 * horizon instead of spending on the shared clock, so many devices'
 * windows stream concurrently in virtual time. Completion is an
 * engine event at the lane-local finish time.
 *
 * Busy periods are emitted as coalesced root-level trace spans named
 * after the lane (lanes that should aggregate share a name), so span
 * sums equal the busy time the lane accrued — the scale bench's
 * span-sum-vs-cost-model cross-check.
 */
class DmaLaneActor final : public sim::Actor
{
  public:
    static constexpr uint32_t kJobDone = 1;

    struct Job
    {
        uint64_t bytes = 0;
        size_t chunkBytes = 64 * 1024;
        size_t window = 8;
        /** Posted this event when the transfer completes. */
        uint32_t notifyActor = 0;
        uint32_t notifyKind = 0;
        uint64_t notifyA = 0;
    };

    struct LaneStats
    {
        uint64_t jobs = 0;
        uint64_t bytes = 0;
        uint64_t descriptors = 0;
        sim::Nanos busyNanos = 0;      ///< wire + stalls + exposed crypto
        sim::Nanos transportNanos = 0; ///< wire time + ack stalls
        sim::Nanos cryptoNanos = 0;    ///< exposed (not hidden) seal time
        sim::Nanos hiddenCryptoNanos = 0;
        sim::Nanos idleUntil = 0; ///< lane-local busy horizon
    };

    DmaLaneActor(const sim::CostModel &cost, std::string name)
        : cost_(cost), name_(std::move(name))
    {}

    uint32_t attach(sim::Engine &engine);
    uint32_t actorId() const { return actorId_; }

    /** Queues one windowed transfer; lane-local FIFO. The completion
     *  event fires at the lane's finish time for this job. */
    void submit(sim::Engine &engine, const Job &job);

    void onEvent(sim::Engine &engine, const sim::Event &event) override;

    /** Emits the trailing coalesced busy span (call once, after the
     *  run loop drains, before exporting the trace). */
    void flushSpans();

    const LaneStats &stats() const { return stats_; }

  private:
    /** Runs the window arithmetic for one job on the lane-local
     *  timeline starting at `from`; returns the finish time. */
    sim::Nanos simulateJob(sim::Nanos from, const Job &job);

    const sim::CostModel &cost_;
    std::string name_;
    uint32_t actorId_ = 0;
    LaneStats stats_;
    sim::Nanos busyStart_ = 0;
    bool busyOpen_ = false;
};

} // namespace salus::core

#endif // SALUS_SALUS_ACTORS_HPP
