#include "salus/testbed.hpp"

#include <algorithm>

#include "bitstream/compiler.hpp"
#include "common/errors.hpp"
#include "crypto/sha256.hpp"
#include "obs/trace.hpp"
#include "salus/sm_logic.hpp"

namespace salus::core {

TestbedConfig::TestbedConfig()
    : userImage(UserEnclaveApp::defaultImage())
{
}

Testbed::Testbed(TestbedConfig config) : config_(std::move(config))
{
    rng_ = std::make_unique<crypto::CtrDrbg>(config_.rngSeed);
    injector_ = std::make_unique<sim::FaultInjector>(config_.faultPlan,
                                                     clock_);

    fpga::ensureBuiltinIps();
    SmLogic::registerIp();

    // --- manufacturing + provisioning --------------------------------
    manufacturer_ = std::make_unique<manufacturer::Manufacturer>(*rng_);
    platform_ = std::make_unique<tee::TeePlatform>("platform-1", *rng_);
    manufacturer_->provisionPlatform(*platform_);
    manufacturer_->allowSmEnclave(SmEnclaveApp::defaultMeasurement());

    // --- cloud instance: the FPGA pool -------------------------------
    // Every device is individually manufactured (own eFUSE Key_device,
    // own DeviceDNA) and fronted by its own shell; the CSP ships the
    // same (possibly malicious) shell build on all of them. One fault
    // fabric spans all layers; device-scoped rules select by index.
    uint32_t count = std::max<uint32_t>(1, config_.deviceCount);
    for (uint32_t i = 0; i < count; ++i) {
        DeviceSlot slot;
        slot.device = manufacturer_->manufactureFpga(config_.deviceModel);
        slot.device->setDeviceIndex(i);
        slot.device->setFaultInjector(injector_.get());
        if (config_.maliciousShell) {
            auto mal = std::make_unique<shell::MaliciousShell>(
                *slot.device, clock_, config_.cost, config_.attackPlan);
            slot.malicious = mal.get();
            slot.shell = std::move(mal);
        } else {
            slot.shell = std::make_unique<shell::Shell>(
                *slot.device, clock_, config_.cost);
        }
        slot.shell->setDeviceIndex(i);
        slot.shell->setFaultInjector(injector_.get());
        slots_.push_back(std::move(slot));
    }

    network_ = std::make_unique<net::Network>(clock_, config_.cost);
    network_->setFaultInjector(injector_.get());
    network_->addEndpoint(endpoints::kUserClient);
    network_->addEndpoint(endpoints::kCloudHost);
    network_->addEndpoint(endpoints::kManufacturer);
    network_->addEndpoint(endpoints::kSupervisor);
    network_->link(endpoints::kUserClient, endpoints::kCloudHost,
                   sim::LinkKind::Wan);
    network_->link(endpoints::kCloudHost, endpoints::kManufacturer,
                   sim::LinkKind::IntraCloud);
    network_->link(endpoints::kSupervisor, endpoints::kCloudHost,
                   sim::LinkKind::IntraCloud);

    // --- enclave applications ----------------------------------------
    smApp_ = std::make_unique<SmEnclaveApp>(*platform_, makeSmDeps());

    SmTransport transport;
    transport.la1 = [this](ByteView m) { return smApp_->laAnswer(m); };
    transport.la3 = [this](ByteView m) { return smApp_->laConfirm(m); };
    transport.channel = [this](ByteView m) {
        return smApp_->channelRequest(m);
    };
    userApp_ = std::make_unique<UserEnclaveApp>(
        *platform_, config_.userImage, SmEnclaveApp::defaultMeasurement(),
        transport, simHooks());

    // --- fleet supervisor --------------------------------------------
    SupervisorDeps supDeps;
    supDeps.clock = &clock_;
    supDeps.injector = injector_.get();
    supDeps.deviceCount = count;
    supDeps.health = config_.health;
    supDeps.probePeriod = config_.heartbeatPeriod;
    supDeps.probe = [this](uint32_t deviceId) {
        HeartbeatRequest req;
        req.deviceId = deviceId;
        req.nonce = rng_->nextU64();
        SmEnclaveApp::HeartbeatResult res;
        // No retries here: the supervisor's circuit breaker IS the
        // retry policy; masking lost probes would blind it.
        net::CallOutcome out = network_->callWithRetry(
            endpoints::kSupervisor, endpoints::kCloudHost, "heartbeat",
            req.serialize(), net::RetryPolicy::none(),
            "Fleet Heartbeat");
        if (!out.ok()) {
            res.failure = "probe transport: " + out.error;
            return res;
        }
        try {
            HeartbeatResponse rsp =
                HeartbeatResponse::deserialize(out.response);
            res.reachable = rsp.reachable != 0;
            res.authentic = rsp.authentic != 0;
            res.count = rsp.count;
            res.failure = rsp.failure;
        } catch (const SalusError &e) {
            res.failure = std::string("malformed probe response: ") +
                          e.what();
        }
        return res;
    };
    supDeps.failover = [this](uint32_t from, uint32_t to,
                              const std::string &reason) {
        return performFailover(from, to, reason);
    };
    supDeps.migrate = [this](uint32_t, uint32_t to,
                             const std::string &reason) {
        return performMigration(to, reason);
    };
    supDeps.activeDevice = [this] { return smApp_->activeDevice(); };
    supervisor_ = std::make_unique<FleetSupervisor>(std::move(supDeps));

    // --- RPC handlers --------------------------------------------------
    network_->on(endpoints::kManufacturer, "keyRequest",
                 [this](ByteView req) {
                     // Server-side quote verification (DCAP collateral
                     // fetched over the intra-cloud link).
                     clock_.spend(phases::kDeviceKeyDist,
                                  config_.cost.quoteVerification +
                                      config_.cost.keyEscrowProcessing +
                                      sim::Nanos(config_.cost
                                                     .dcapCollateralRoundTrips) *
                                          config_.cost.rpc(
                                              sim::LinkKind::IntraCloud,
                                              2048, 16384));
                     manufacturer::KeyRequest parsed;
                     try {
                         parsed = manufacturer::KeyRequest::deserialize(
                             req);
                     } catch (const SalusError &) {
                         manufacturer::KeyResponse bad;
                         bad.status = 2; // unparseable != refused
                         bad.reason = "malformed request";
                         return bad.serialize();
                     }
                     return manufacturer_->handleKeyRequest(parsed)
                         .serialize();
                 });
    network_->on(endpoints::kCloudHost, "raRequest",
                 [this](ByteView req) {
                     return userApp_->handleRaRequest(req);
                 });
    network_->on(endpoints::kCloudHost, "dataKey",
                 [this](ByteView req) {
                     Bytes ack(1);
                     ack[0] = userApp_->acceptDataKey(req) ? 1 : 0;
                     return ack;
                 });
    network_->on(endpoints::kCloudHost, "heartbeat",
                 [this](ByteView req) {
                     HeartbeatRequest parsed;
                     try {
                         parsed = HeartbeatRequest::deserialize(req);
                     } catch (const SalusError &) {
                         HeartbeatResponse bad;
                         bad.failure = "malformed heartbeat request";
                         return bad.serialize();
                     }
                     SmEnclaveApp::HeartbeatResult r =
                         smApp_->heartbeatDevice(parsed.deviceId);
                     HeartbeatResponse rsp;
                     rsp.reachable = r.reachable ? 1 : 0;
                     rsp.authentic = r.authentic ? 1 : 0;
                     rsp.count = r.count;
                     rsp.nonceEcho = parsed.nonce + 1;
                     rsp.failure = r.failure;
                     return rsp.serialize();
                 });
}

Testbed::~Testbed() = default;

SimHooks
Testbed::simHooks()
{
    return SimHooks{&clock_, &config_.cost};
}

uint32_t
Testbed::activeDevice() const
{
    return smApp_ ? smApp_->activeDevice() : 0;
}

SmEnclaveDeps
Testbed::makeSmDeps()
{
    SmEnclaveDeps smDeps;
    smDeps.shell = slots_.at(0).shell.get();
    smDeps.network = network_.get();
    smDeps.selfEndpoint = endpoints::kCloudHost;
    smDeps.manufacturerEndpoint = endpoints::kManufacturer;
    smDeps.instanceDeviceDna = slots_.at(0).device->dna().value;
    for (const DeviceSlot &slot : slots_)
        smDeps.devices.push_back(
            {slot.shell.get(), slot.device->dna().value});
    smDeps.fetchBitstream = [this] { return storedBitstream_; };
    smDeps.retry = config_.retry;
    smDeps.sim = simHooks();
    smDeps.fault = injector_.get();
    smDeps.storeJournal = [this](ByteView blob) {
        journalStore_.assign(blob.begin(), blob.end());
    };
    smDeps.fetchJournal = [this] { return journalStore_; };
    smDeps.onDeviceFailure = [this](uint32_t deviceId,
                                    const ErrorContext &ctx) {
        if (supervisor_)
            supervisor_->noteDeviceFailure(deviceId, ctx);
    };
    return smDeps;
}

void
Testbed::rebuildSmApp()
{
    smApp_ = std::make_unique<SmEnclaveApp>(*platform_, makeSmDeps());
    // Re-create the tenant peer endpoints so peer ids stay valid on
    // the fresh instance; each tenant must attachToPlatform() again
    // (its old LA session died with the old enclave).
    for (size_t i = 0; i < extraUsers_.size(); ++i)
        smApp_->createPeer();
}

uint32_t
Testbed::addUserSession()
{
    uint32_t peer = smApp_->createPeer();
    SmTransport transport;
    transport.la1 = [this, peer](ByteView m) {
        return smApp_->laAnswer(peer, m);
    };
    transport.la3 = [this, peer](ByteView m) {
        return smApp_->laConfirm(peer, m);
    };
    transport.channel = [this, peer](ByteView m) {
        return smApp_->channelRequest(peer, m);
    };
    tee::EnclaveImage image = config_.userImage;
    image.name += "-tenant-" + std::to_string(peer);
    extraUsers_.push_back(std::make_unique<UserEnclaveApp>(
        *platform_, std::move(image), SmEnclaveApp::defaultMeasurement(),
        transport, simHooks()));
    if (scheduler_)
        scheduler_->addSession(peer);
    return peer;
}

UserEnclaveApp &
Testbed::userApp(uint32_t peer)
{
    if (peer == 0)
        return *userApp_;
    return *extraUsers_.at(peer - 1);
}

sim::Engine &
Testbed::engine()
{
    if (!engine_) {
        sim::Engine::Config cfg;
        cfg.seed = config_.rngSeed;
        engine_ = std::make_unique<sim::Engine>(clock_, cfg);
    }
    return *engine_;
}

BatchScheduler &
Testbed::scheduler()
{
    if (!scheduler_) {
        BatchScheduler::Config cfg;
        cfg.queueCapacity = config_.schedulerQueueCapacity;
        cfg.maxBatchOps = config_.schedulerMaxBatchOps;
        // Slice latencies are stamped from the shared virtual clock so
        // QoS benches can read per-tenant service times deterministically.
        cfg.clock = &clock_;
        scheduler_ = std::make_unique<BatchScheduler>(
            [this](uint32_t slot,
                   const std::vector<regchan::RegOp> &ops) {
                std::vector<regchan::BatchResult> results;
                // Channel-level failures (fabric reject / forged
                // response / no attested CL) count as device failures
                // for the supervisor's circuit breaker; a triggered
                // failover surfaces as FailoverError through here.
                supervisor_->guardedOp(
                    [&] {
                        results = smApp_->secureRegBatch(slot, ops);
                        for (const regchan::BatchResult &r : results) {
                            if (r.status == 0xfd || r.status == 0xfc ||
                                r.status == 0xfb)
                                return false;
                        }
                        return true;
                    },
                    "secureRegBatch");
                return results;
            },
            cfg);
        scheduler_->setDmaDispatch(
            [this](uint32_t slot, const BatchScheduler::DmaJob &job) {
                dmachan::DmaTransferReport report;
                SmEnclaveApp::DmaOptions opts;
                opts.windowSize = job.windowSize;
                // Exhausted retransmits, forged acks and a missing
                // attested CL feed the same circuit breaker as the
                // register channel.
                supervisor_->guardedOp(
                    [&] {
                        report = smApp_->dmaWrite(slot, job.addr,
                                                  job.data, opts);
                        return report.status != 0xfd &&
                               report.status != 0xf8 &&
                               report.status != 0xf9;
                    },
                    "dmaWrite");
                return report;
            });
        scheduler_->addSession(0);
        for (size_t i = 0; i < extraUsers_.size(); ++i)
            scheduler_->addSession(uint32_t(i + 1));
    }
    return *scheduler_;
}

bool
Testbed::restartSmApp(ByteView sealedDeviceKey)
{
    rebuildSmApp();
    if (sealedDeviceKey.empty())
        return true;
    return smApp_->importSealedDeviceKey(sealedDeviceKey);
}

SmEnclaveApp::RecoveryReport
Testbed::crashAndRecoverSmApp()
{
    rebuildSmApp();
    return smApp_->rehydrate();
}

FailoverRecord
Testbed::performFailover(uint32_t from, uint32_t to,
                         const std::string &reason)
{
    obs::Span span(obs::Category::Supervisor, "perform_failover",
                   uint64_t(to));
    FailoverRecord rec;
    rec.fromDevice = from;
    rec.toDevice = to;
    rec.reason = reason;
    // Fingerprint the dying session BEFORE the switch retires it.
    rec.oldFingerprint = smApp_->secretsFingerprint();
    if (!smApp_->setActiveDevice(to))
        return rec; // no such spare; record stays un-attested

    // Re-run the ENTIRE deployment flow against the new DeviceDNA:
    // Key_device fetch (manufacturer round trip) for the spare, RoT
    // injection into a fresh bitstream copy, and the full cascaded
    // attestation from the user client down. Nothing from the dead
    // device's session survives.
    UserClient::Outcome out = runDeployment();
    rec.attested = out.ok ? 1 : 0;
    rec.attempts = uint32_t(std::max(0, out.attempts));
    rec.newFingerprint = smApp_->secretsFingerprint();
    return rec;
}

MigrationRecord
Testbed::performMigration(uint32_t to, const std::string &reason)
{
    obs::Span span(obs::Category::Supervisor, "perform_migration",
                   uint64_t(to));
    MigrationRecord rec;
    rec.fromDevice = activeDevice();
    rec.toDevice = to;
    rec.reason = reason;

    // Phase 1: quiesce. In-flight bursts already completed (the
    // scheduler is synchronous); from here new submissions park in
    // the bounded per-session queues and callers see only ordinary
    // backpressure once those fill. Nothing further reaches the
    // source device.
    bool quiesced = false;
    if (scheduler_) {
        obs::Span q(obs::Category::Supervisor, "migration_quiesce");
        rec.parkedOps = scheduler_->quiesce();
        quiesced = true;
    }
    // The queue is released on EVERY exit path: success (parked ops
    // flow to the target) and failure (they flow on the source, which
    // still holds its attested session).
    struct ReleaseGuard
    {
        Testbed *tb;
        bool armed;
        ~ReleaseGuard()
        {
            if (armed && tb->scheduler_) {
                obs::Span r(obs::Category::Supervisor,
                            "migration_release");
                tb->scheduler_->release();
            }
        }
    } release{this, quiesced};

    // Phase 2: the SM enclave authorizes the move under the current
    // Key_attest. Throws MigrationError on misuse (no live session,
    // bad target) — the guard re-opens the queue on the source.
    MigrationTicket ticket;
    {
        obs::Span t(obs::Category::Supervisor, "migration_ticket");
        ticket = smApp_->issueMigrationTicket(to);
    }

    // Phase 3: tombstone. The commit verifies the (host-relayed)
    // ticket, retires + fingerprints the source epoch's secrets and
    // journals the device switch; a crash anywhere in here lands in
    // the sweep-tested journal recovery. Round-trip the ticket
    // through its wire form — that is what actually crosses the
    // untrusted supervisor.
    {
        obs::Span t(obs::Category::Supervisor, "migration_tombstone");
        rec.oldFingerprint = smApp_->secretsFingerprint();
        MigrationTicket relayed =
            MigrationTicket::deserialize(ticket.serialize());
        if (!smApp_->commitMigration(relayed))
            throw MigrationError(
                "SM refused the migration ticket for device " +
                std::to_string(to));
    }

    // Phase 4: re-inject a fresh RoT and re-run the ENTIRE cascaded
    // attestation against the target's DeviceDNA. Per-slot counters
    // come from the fresh epoch; nothing from the source survives.
    {
        obs::Span t(obs::Category::Supervisor, "migration_attest");
        UserClient::Outcome out = runDeployment();
        rec.attested = out.ok ? 1 : 0;
    }
    rec.newFingerprint = smApp_->secretsFingerprint();
    return rec;
    // Phase 5 (guard): migration_release re-opens the parked queue.
}

void
Testbed::installCl(netlist::Cell accelCell,
                   std::vector<netlist::Cell> extraCells)
{
    obs::Span span(obs::Category::Bitstream, "install_cl");
    ClDesign design = buildClDesign("cl_top", std::move(accelCell),
                                    std::move(extraCells));
    layout_ = design.layout;

    bitstream::Compiler compiler(config_.deviceModel.name);
    bitstream::CompiledDesign compiled = compiler.compile(
        design.netlist, config_.deviceModel.partitions.at(0));

    storedBitstream_ = std::move(compiled.file);
    utilization_ = compiled.utilization;

    metadata_.digestH = crypto::Sha256::digest(storedBitstream_);
    metadata_.logicLocations = compiled.logicLocations.serialize();
    metadata_.keyAttestPath = layout_.keyAttestPath;
    metadata_.keySessionPath = layout_.keySessionPath;
    metadata_.ctrSessionPath = layout_.ctrSessionPath;
    clInstalled_ = true;
}

bool
Testbed::installArtifact(const ClArtifact &artifact,
                         ByteView expectedDeveloperKey)
{
    if (!verifyArtifact(artifact, expectedDeveloperKey))
        return false;

    ClMetadata meta = ClMetadata::deserialize(artifact.metadata);
    storedBitstream_ = artifact.bitstream;
    metadata_ = meta;
    layout_.keyAttestPath = meta.keyAttestPath;
    layout_.keySessionPath = meta.keySessionPath;
    layout_.ctrSessionPath = meta.ctrSessionPath;
    // SM cell path follows the builder convention (sibling of the
    // key cells).
    layout_.smCellPath =
        meta.keyAttestPath.substr(0, meta.keyAttestPath.rfind('/')) +
        "/logic";
    layout_.accelCellPath.clear();
    clInstalled_ = true;
    return true;
}

UserClient::Outcome
Testbed::runDeployment(
    const std::function<void(ClientConfig &)> &customize)
{
    if (!clInstalled_)
        throw SalusError("no CL installed; call installCl() first");
    obs::Span span(obs::Category::Boot, "run_deployment");

    ClientConfig cfg;
    cfg.expectedUserEnclave = userApp_->measurement();
    cfg.expectedSm = SmEnclaveApp::defaultMeasurement();
    cfg.metadata = metadata_;
    cfg.selfEndpoint = endpoints::kUserClient;
    cfg.cloudEndpoint = endpoints::kCloudHost;
    cfg.retry = config_.retry;
    if (customize)
        customize(cfg);

    UserClient client(cfg, manufacturer_->verificationService(),
                      *network_, *rng_, simHooks());
    return client.deployAndAttest();
}

} // namespace salus::core
