#include "salus/testbed.hpp"

#include "bitstream/compiler.hpp"
#include "common/errors.hpp"
#include "crypto/sha256.hpp"
#include "salus/sm_logic.hpp"

namespace salus::core {

TestbedConfig::TestbedConfig()
    : userImage(UserEnclaveApp::defaultImage())
{
}

Testbed::Testbed(TestbedConfig config) : config_(std::move(config))
{
    rng_ = std::make_unique<crypto::CtrDrbg>(config_.rngSeed);
    injector_ = std::make_unique<sim::FaultInjector>(config_.faultPlan,
                                                     clock_);

    fpga::ensureBuiltinIps();
    SmLogic::registerIp();

    // --- manufacturing + provisioning --------------------------------
    manufacturer_ = std::make_unique<manufacturer::Manufacturer>(*rng_);
    platform_ = std::make_unique<tee::TeePlatform>("platform-1", *rng_);
    manufacturer_->provisionPlatform(*platform_);
    manufacturer_->allowSmEnclave(SmEnclaveApp::defaultMeasurement());
    device_ = manufacturer_->manufactureFpga(config_.deviceModel);

    // --- cloud instance ----------------------------------------------
    if (config_.maliciousShell) {
        auto mal = std::make_unique<shell::MaliciousShell>(
            *device_, clock_, config_.cost, config_.attackPlan);
        malicious_ = mal.get();
        shell_ = std::move(mal);
    } else {
        shell_ = std::make_unique<shell::Shell>(*device_, clock_,
                                                config_.cost);
    }

    // One fault fabric across all three layers: RPC links, the PCIe
    // register path and the configuration port.
    device_->setFaultInjector(injector_.get());
    shell_->setFaultInjector(injector_.get());

    network_ = std::make_unique<net::Network>(clock_, config_.cost);
    network_->setFaultInjector(injector_.get());
    network_->addEndpoint(endpoints::kUserClient);
    network_->addEndpoint(endpoints::kCloudHost);
    network_->addEndpoint(endpoints::kManufacturer);
    network_->link(endpoints::kUserClient, endpoints::kCloudHost,
                   sim::LinkKind::Wan);
    network_->link(endpoints::kCloudHost, endpoints::kManufacturer,
                   sim::LinkKind::IntraCloud);

    // --- enclave applications ----------------------------------------
    SmEnclaveDeps smDeps;
    smDeps.shell = shell_.get();
    smDeps.network = network_.get();
    smDeps.selfEndpoint = endpoints::kCloudHost;
    smDeps.manufacturerEndpoint = endpoints::kManufacturer;
    smDeps.instanceDeviceDna = device_->dna().value;
    smDeps.fetchBitstream = [this] { return storedBitstream_; };
    smDeps.retry = config_.retry;
    smDeps.sim = simHooks();
    smApp_ = std::make_unique<SmEnclaveApp>(*platform_, smDeps);

    SmTransport transport;
    transport.la1 = [this](ByteView m) { return smApp_->laAnswer(m); };
    transport.la3 = [this](ByteView m) { return smApp_->laConfirm(m); };
    transport.channel = [this](ByteView m) {
        return smApp_->channelRequest(m);
    };
    userApp_ = std::make_unique<UserEnclaveApp>(
        *platform_, config_.userImage, SmEnclaveApp::defaultMeasurement(),
        transport, simHooks());

    // --- RPC handlers --------------------------------------------------
    network_->on(endpoints::kManufacturer, "keyRequest",
                 [this](ByteView req) {
                     // Server-side quote verification (DCAP collateral
                     // fetched over the intra-cloud link).
                     clock_.spend(phases::kDeviceKeyDist,
                                  config_.cost.quoteVerification +
                                      config_.cost.keyEscrowProcessing +
                                      sim::Nanos(config_.cost
                                                     .dcapCollateralRoundTrips) *
                                          config_.cost.rpc(
                                              sim::LinkKind::IntraCloud,
                                              2048, 16384));
                     manufacturer::KeyRequest parsed;
                     try {
                         parsed = manufacturer::KeyRequest::deserialize(
                             req);
                     } catch (const SalusError &) {
                         manufacturer::KeyResponse bad;
                         bad.status = 2; // unparseable != refused
                         bad.reason = "malformed request";
                         return bad.serialize();
                     }
                     return manufacturer_->handleKeyRequest(parsed)
                         .serialize();
                 });
    network_->on(endpoints::kCloudHost, "raRequest",
                 [this](ByteView req) {
                     return userApp_->handleRaRequest(req);
                 });
    network_->on(endpoints::kCloudHost, "dataKey",
                 [this](ByteView req) {
                     Bytes ack(1);
                     ack[0] = userApp_->acceptDataKey(req) ? 1 : 0;
                     return ack;
                 });
}

Testbed::~Testbed() = default;

SimHooks
Testbed::simHooks()
{
    return SimHooks{&clock_, &config_.cost};
}

bool
Testbed::restartSmApp(ByteView sealedDeviceKey)
{
    SmEnclaveDeps smDeps;
    smDeps.shell = shell_.get();
    smDeps.network = network_.get();
    smDeps.selfEndpoint = endpoints::kCloudHost;
    smDeps.manufacturerEndpoint = endpoints::kManufacturer;
    smDeps.instanceDeviceDna = device_->dna().value;
    smDeps.fetchBitstream = [this] { return storedBitstream_; };
    smDeps.retry = config_.retry;
    smDeps.sim = simHooks();
    smApp_ = std::make_unique<SmEnclaveApp>(*platform_, smDeps);

    if (sealedDeviceKey.empty())
        return true;
    return smApp_->importSealedDeviceKey(sealedDeviceKey);
}

void
Testbed::installCl(netlist::Cell accelCell,
                   std::vector<netlist::Cell> extraCells)
{
    ClDesign design = buildClDesign("cl_top", std::move(accelCell),
                                    std::move(extraCells));
    layout_ = design.layout;

    bitstream::Compiler compiler(config_.deviceModel.name);
    bitstream::CompiledDesign compiled = compiler.compile(
        design.netlist, config_.deviceModel.partitions.at(0));

    storedBitstream_ = std::move(compiled.file);
    utilization_ = compiled.utilization;

    metadata_.digestH = crypto::Sha256::digest(storedBitstream_);
    metadata_.logicLocations = compiled.logicLocations.serialize();
    metadata_.keyAttestPath = layout_.keyAttestPath;
    metadata_.keySessionPath = layout_.keySessionPath;
    metadata_.ctrSessionPath = layout_.ctrSessionPath;
    clInstalled_ = true;
}

bool
Testbed::installArtifact(const ClArtifact &artifact,
                         ByteView expectedDeveloperKey)
{
    if (!verifyArtifact(artifact, expectedDeveloperKey))
        return false;

    ClMetadata meta = ClMetadata::deserialize(artifact.metadata);
    storedBitstream_ = artifact.bitstream;
    metadata_ = meta;
    layout_.keyAttestPath = meta.keyAttestPath;
    layout_.keySessionPath = meta.keySessionPath;
    layout_.ctrSessionPath = meta.ctrSessionPath;
    // SM cell path follows the builder convention (sibling of the
    // key cells).
    layout_.smCellPath =
        meta.keyAttestPath.substr(0, meta.keyAttestPath.rfind('/')) +
        "/logic";
    layout_.accelCellPath.clear();
    clInstalled_ = true;
    return true;
}

UserClient::Outcome
Testbed::runDeployment(
    const std::function<void(ClientConfig &)> &customize)
{
    if (!clInstalled_)
        throw SalusError("no CL installed; call installCl() first");

    ClientConfig cfg;
    cfg.expectedUserEnclave = userApp_->measurement();
    cfg.expectedSm = SmEnclaveApp::defaultMeasurement();
    cfg.metadata = metadata_;
    cfg.selfEndpoint = endpoints::kUserClient;
    cfg.cloudEndpoint = endpoints::kCloudHost;
    cfg.retry = config_.retry;
    if (customize)
        customize(cfg);

    UserClient client(cfg, manufacturer_->verificationService(),
                      *network_, *rng_, simHooks());
    return client.deployAndAttest();
}

} // namespace salus::core
