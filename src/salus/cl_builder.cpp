#include "salus/cl_builder.hpp"

#include "common/serde.hpp"
#include "fpga/ip.hpp"
#include "obs/trace.hpp"
#include "salus/secrets.hpp"

namespace salus::core {

netlist::ResourceVector
smLogicResources()
{
    // Paper Table 5, "SM Logic" row: 27667 LUT, 29631 FF, 88 BRAM.
    return {27667, 29631, 88, 0};
}

ClDesign
buildClDesign(const std::string &topName, netlist::Cell accelCell,
              std::vector<netlist::Cell> extraCells)
{
    obs::Span span(obs::Category::Bitstream, "build_cl_design",
                   uint64_t(1 + extraCells.size()));
    ClDesign out;
    out.netlist.setTop(topName);

    const std::string smBase = topName + "/sm";
    const std::string accelBase = topName + "/accel";

    out.layout.smCellPath = smBase + "/logic";
    out.layout.keyAttestPath = smBase + "/" + kKeyAttestCell;
    out.layout.keySessionPath = smBase + "/" + kKeySessionCell;
    out.layout.ctrSessionPath = smBase + "/" + kCtrSessionCell;
    out.layout.accelCellPath = accelBase + "/" + accelCell.path;

    // --- SM logic block ------------------------------------------------
    netlist::Cell sm;
    sm.path = out.layout.smCellPath;
    sm.kind = netlist::CellKind::Logic;
    sm.behaviorId = fpga::kIpSmLogic;
    // BRAM count is carried by the key cells below; the logic block
    // carries the LUT/FF cost.
    netlist::ResourceVector smRes = smLogicResources();
    uint32_t smBramsTotal = smRes.brams;
    smRes.brams = smBramsTotal - 3;
    sm.resources = smRes;
    // Parameter blob: where my secret BRAMs and my accelerator are.
    {
        BinaryWriter w;
        w.writeString(out.layout.keyAttestPath);
        w.writeString(out.layout.keySessionPath);
        w.writeString(out.layout.ctrSessionPath);
        w.writeString(out.layout.accelCellPath);
        sm.params = w.take();
    }
    out.netlist.addCell(std::move(sm));

    // --- Reserved secret BRAMs (zero-filled until deployment) ----------
    auto addSecretBram = [&](const std::string &path, size_t size) {
        netlist::Cell bram;
        bram.path = path;
        bram.kind = netlist::CellKind::Bram;
        bram.resources = {0, 0, 1, 0};
        bram.init = Bytes(size, 0);
        out.netlist.addCell(std::move(bram));
    };
    addSecretBram(out.layout.keyAttestPath, kKeyAttestSize);
    addSecretBram(out.layout.keySessionPath, kKeySessionSize);
    addSecretBram(out.layout.ctrSessionPath, kCtrSessionSize);

    // --- Developer's accelerator ---------------------------------------
    accelCell.path = out.layout.accelCellPath;
    out.netlist.addCell(std::move(accelCell));
    for (auto &cell : extraCells) {
        cell.path = accelBase + "/" + cell.path;
        out.netlist.addCell(std::move(cell));
    }

    return out;
}

} // namespace salus::core
