/**
 * @file
 * Message formats of the Salus software stack (paper Fig. 7):
 * the bitstream metadata the data owner ships to the user enclave
 * (digest H + Loc_keyattest et al.), and the sealed user<->SM enclave
 * channel that runs over the local-attestation session key.
 */

#ifndef SALUS_SALUS_MESSAGES_HPP
#define SALUS_SALUS_MESSAGES_HPP

#include <optional>
#include <string>

#include "bitstream/logic_location.hpp"
#include "common/bytes.hpp"

namespace salus::core {

/**
 * Everything the data owner knows about the expected CL bitstream
 * (produced by the developer, paper §4.2 "application development").
 */
struct ClMetadata
{
    Bytes digestH;        ///< SHA-256 over the raw bitstream file
    Bytes logicLocations; ///< serialized bitstream::LogicLocationFile
    std::string keyAttestPath;
    std::string keySessionPath;
    std::string ctrSessionPath;

    Bytes serialize() const;
    static ClMetadata deserialize(ByteView data);

    /** Digest over the serialized metadata (bound into the final RA
     *  report so the client can confirm which CL was deployed). */
    Bytes digest() const;
};

/** Boot/attestation outcome the SM enclave reports upstream. */
struct ClBootStatus
{
    bool deployed = false;   ///< bitstream verified + loaded
    bool attested = false;   ///< CL attestation succeeded
    std::string failure;     ///< first failing step, empty when ok

    bool ok() const { return deployed && attested; }

    Bytes serialize() const;
    static ClBootStatus deserialize(ByteView data);
};

// ---- Sealed enclave-to-enclave channel ------------------------------
//
// AES-GCM under the LA session key with a direction label and a
// sequence number folded into the IV; replayed or reflected messages
// fail to open.

/** Seals one channel message. */
Bytes channelSeal(ByteView sessionKey, const std::string &direction,
                  uint64_t seq, ByteView plaintext);

/** Opens one channel message; nullopt on tamper/replay/reflection. */
std::optional<Bytes> channelOpen(ByteView sessionKey,
                                 const std::string &direction,
                                 uint64_t seq, ByteView sealed);

} // namespace salus::core

#endif // SALUS_SALUS_MESSAGES_HPP
