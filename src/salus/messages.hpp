/**
 * @file
 * Message formats of the Salus software stack (paper Fig. 7):
 * the bitstream metadata the data owner ships to the user enclave
 * (digest H + Loc_keyattest et al.), and the sealed user<->SM enclave
 * channel that runs over the local-attestation session key.
 */

#ifndef SALUS_SALUS_MESSAGES_HPP
#define SALUS_SALUS_MESSAGES_HPP

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "bitstream/logic_location.hpp"
#include "common/bytes.hpp"

namespace salus::core {

/**
 * Everything the data owner knows about the expected CL bitstream
 * (produced by the developer, paper §4.2 "application development").
 */
struct ClMetadata
{
    Bytes digestH;        ///< SHA-256 over the raw bitstream file
    Bytes logicLocations; ///< serialized bitstream::LogicLocationFile
    std::string keyAttestPath;
    std::string keySessionPath;
    std::string ctrSessionPath;

    Bytes serialize() const;
    static ClMetadata deserialize(ByteView data);

    /** Digest over the serialized metadata (bound into the final RA
     *  report so the client can confirm which CL was deployed). */
    Bytes digest() const;
};

/** Boot/attestation outcome the SM enclave reports upstream. */
struct ClBootStatus
{
    bool deployed = false;   ///< bitstream verified + loaded
    bool attested = false;   ///< CL attestation succeeded
    std::string failure;     ///< first failing step, empty when ok

    bool ok() const { return deployed && attested; }

    Bytes serialize() const;
    static ClBootStatus deserialize(ByteView data);
};

// ---- SM-enclave crash-recovery journal ------------------------------
//
// The SM enclave's durable state: deployment table + session metadata,
// sealed to the enclave identity and versioned against a platform
// monotonic counter. The HOST stores the sealed blob (untrusted
// storage); rollback to an earlier version is detected at rehydration
// and refused.

/** One derived fabric session slot (multi-session channel). */
struct SmJournalSession
{
    uint32_t slot = 0;
    Bytes keySession; ///< 48 bytes (AES + MAC keys)
    uint64_t openNonce = 0;
    uint64_t ctrReserve = 0;    ///< write-ahead per-slot counter bound
    uint64_t dmaSeqReserve = 0; ///< write-ahead DMA sequence bound
};

/** One device's durable deployment record. */
struct SmJournalDevice
{
    uint32_t deviceId = 0;
    uint64_t dna = 0;
    uint8_t deployed = 0;
    uint8_t attested = 0;
    uint8_t haveSecrets = 0;
    Bytes keyAttest;      ///< 16 bytes when haveSecrets
    Bytes keySession;     ///< 48 bytes when haveSecrets
    uint64_t ctrBase = 0;
    uint64_t ctrReserve = 0; ///< write-ahead session-counter reservation
    uint64_t dmaSeqReserve = 0; ///< write-ahead DMA sequence reservation
    uint8_t havePendingRekey = 0;
    Bytes pendingRekeyMacKey;
    uint64_t pendingRekeyNonce = 0;
    std::vector<SmJournalSession> sessions; ///< derived slots only
};

/** The journal record (plaintext form; sealed before storage). */
struct SmJournal
{
    /** Must equal (or exceed by the crash window) the platform
     *  monotonic counter at rehydration; smaller = rollback. */
    uint64_t version = 0;
    uint8_t haveMetadata = 0;
    Bytes metadata; ///< serialized ClMetadata
    /** Per-DNA Key_device cache (dna -> 32-byte key). */
    std::vector<std::pair<uint64_t, Bytes>> deviceKeys;
    std::vector<SmJournalDevice> devices;
    uint32_t activeDevice = 0;
    /** SHA-256 fingerprints of every retired secret set — the
     *  key-freshness invariant survives SM restarts. */
    std::vector<Bytes> retiredFingerprints;

    Bytes serialize() const;
    /** @throws SerdeError on truncation, bad magic or absurd counts
     *  (fuzz-hardened: attacker-controlled storage feeds this). */
    static SmJournal deserialize(ByteView data);
};

// ---- Sealed enclave-to-enclave channel ------------------------------
//
// AES-GCM under the LA session key with a direction label and a
// sequence number folded into the IV; replayed or reflected messages
// fail to open.

/** Seals one channel message. */
Bytes channelSeal(ByteView sessionKey, const std::string &direction,
                  uint64_t seq, ByteView plaintext);

/** Opens one channel message; nullopt on tamper/replay/reflection. */
std::optional<Bytes> channelOpen(ByteView sessionKey,
                                 const std::string &direction,
                                 uint64_t seq, ByteView sealed);

} // namespace salus::core

#endif // SALUS_SALUS_MESSAGES_HPP
