#include "salus/fleet_sim.hpp"

#include <algorithm>
#include <memory>

#include "obs/trace.hpp"
#include "salus/actors.hpp"
#include "sim/engine.hpp"
#include "sim/fault.hpp"

namespace salus::core {

namespace {

/** Sealed register-burst record bytes per op on the wire (header +
 *  payload + MAC slice of the burst encoding; a round figure keeps
 *  the model's wire math legible). */
constexpr size_t kRegOpWireBytes = 24;

struct SessionActor;

/**
 * One FPGA device: a FIFO secure-register lane (burst crypto + PCIe
 * round trip, tracked with coalesced "reg_busy" spans) plus an
 * event-driven DMA lane. Both lanes keep LANE-LOCAL busy horizons, so
 * devices progress concurrently on the shared virtual clock.
 */
struct DeviceActor final : sim::Actor
{
    static constexpr uint32_t kRegArrive = 1;
    static constexpr uint32_t kDmaReq = 2;

    const FleetSimConfig &cfg;
    DmaLaneActor dmaLane;
    uint32_t actorId = 0;
    sim::Nanos regIdleUntil = 0;
    sim::Nanos regBusyStart = 0;
    bool regBusyOpen = false;
    sim::Nanos expectedRegNanos = 0;
    uint64_t regBursts = 0;

    /** Filled in by runFleetSim once the session actors exist. */
    const std::vector<uint32_t> *sessionActorIds = nullptr;

    explicit DeviceActor(const FleetSimConfig &config)
        : cfg(config), dmaLane(config.cost, "dma_busy")
    {}

    void attach(sim::Engine &engine)
    {
        actorId = engine.addActor(*this, "device");
        dmaLane.attach(engine);
    }

    sim::Nanos burstServiceTime() const
    {
        return cfg.cost.batchCrypto(cfg.opsPerBurst) + cfg.cost.pcieRtt +
               sim::transferTime(cfg.cost.pcieBandwidth,
                                 cfg.opsPerBurst * kRegOpWireBytes);
    }

    void closeRegSpan()
    {
        if (!regBusyOpen)
            return;
        if (obs::TraceRecorder *rec = obs::tracer())
            rec->completeSpan(obs::Category::Channel, "reg_busy",
                              regBusyStart, regIdleUntil);
        regBusyOpen = false;
    }

    void onEvent(sim::Engine &engine, const sim::Event &event) override;
};

/**
 * One tenant session: `burstsPerSession` register bursts separated by
 * seeded think time, then one windowed DMA transfer, then done.
 */
struct SessionActor final : sim::Actor
{
    static constexpr uint32_t kKick = 1;
    static constexpr uint32_t kBurstDone = 2;
    static constexpr uint32_t kDmaDone = 3;
    static constexpr uint32_t kThinkOver = 4;

    const FleetSimConfig &cfg;
    uint32_t index = 0;
    uint32_t actorId = 0;
    uint32_t deviceActorId = 0;
    uint32_t burstsDone = 0;
    bool completed = false;
    sim::Nanos kickedAt = 0;

    SessionActor(const FleetSimConfig &config, uint32_t idx)
        : cfg(config), index(idx)
    {}

    void attach(sim::Engine &engine)
    {
        actorId = engine.addActor(*this, "session");
    }

    sim::Nanos thinkTime(uint32_t burst) const
    {
        if (cfg.thinkMean <= 0)
            return 0;
        uint64_t state = cfg.seed ^ (uint64_t(index) << 20) ^ burst;
        uint64_t draw = sim::splitmix64(state) %
                        uint64_t(std::max<sim::Nanos>(cfg.thinkMean, 1));
        return cfg.thinkMean / 2 + sim::Nanos(draw);
    }

    void sendBurst(sim::Engine &engine)
    {
        // The request crosses the host loopback to the SM's device
        // lane; service time is charged by the device on arrival.
        engine.post(engine.now() + cfg.cost.loopbackRtt,
                    sim::kPriorityDefault, deviceActorId,
                    DeviceActor::kRegArrive, index);
    }

    void onEvent(sim::Engine &engine, const sim::Event &event) override
    {
        switch (event.kind) {
        case kKick:
            kickedAt = engine.now();
            sendBurst(engine);
            break;
        case kBurstDone:
            ++burstsDone;
            if (burstsDone < cfg.burstsPerSession) {
                engine.post(engine.now() + thinkTime(burstsDone),
                            sim::kPriorityDefault, actorId, kThinkOver,
                            0);
            } else {
                engine.post(engine.now() + cfg.cost.loopbackRtt,
                            sim::kPriorityBulk, deviceActorId,
                            DeviceActor::kDmaReq, index);
            }
            break;
        case kThinkOver:
            sendBurst(engine);
            break;
        case kDmaDone:
            completed = true;
            obs::count("fleet.sessions_completed");
            obs::observe("fleet.session_ns",
                         uint64_t(engine.now() - kickedAt));
            break;
        default:
            break;
        }
    }
};

void
DeviceActor::onEvent(sim::Engine &engine, const sim::Event &event)
{
    const uint32_t session = uint32_t(event.a);
    const uint32_t sessionActor = (*sessionActorIds)[session];
    switch (event.kind) {
    case kRegArrive: {
        sim::Nanos svc = burstServiceTime();
        sim::Nanos start = std::max(engine.now(), regIdleUntil);
        if (regBusyOpen && start > regIdleUntil)
            closeRegSpan();
        if (!regBusyOpen) {
            regBusyOpen = true;
            regBusyStart = start;
        }
        regIdleUntil = start + svc;
        expectedRegNanos += svc;
        ++regBursts;
        obs::count("fleet.reg_bursts");
        obs::count("fleet.reg_ops", cfg.opsPerBurst);
        // The burst completion reaches the session one loopback hop
        // after the device finishes serving it.
        engine.post(regIdleUntil + cfg.cost.loopbackRtt,
                    sim::kPriorityDefault, sessionActor,
                    SessionActor::kBurstDone, session);
        break;
    }
    case kDmaReq: {
        DmaLaneActor::Job job;
        job.bytes = cfg.dmaBytesPerSession;
        job.chunkBytes = cfg.dmaChunkBytes;
        job.window = cfg.dmaWindow;
        job.notifyActor = sessionActor;
        job.notifyKind = SessionActor::kDmaDone;
        job.notifyA = session;
        dmaLane.submit(engine, job);
        break;
    }
    default:
        break;
    }
}

} // namespace

FleetSimReport
runFleetSim(const FleetSimConfig &config)
{
    FleetSimReport report;
    if (config.sessions == 0 || config.devices == 0) {
        report.violations.push_back("fleet: empty session/device set");
        return report;
    }

    sim::VirtualClock clock;
    obs::TraceRecorder recorder(clock);
    obs::MetricsRegistry metricsReg;
    obs::ObsScope obsScope(&recorder, &metricsReg);

    sim::Engine::Config engineCfg;
    engineCfg.seed = config.seed;
    engineCfg.seededTieBreak = config.seededTieBreak;
    sim::Engine engine(clock, engineCfg);

    std::vector<std::unique_ptr<DeviceActor>> devices;
    devices.reserve(config.devices);
    for (uint32_t d = 0; d < config.devices; ++d) {
        devices.push_back(std::make_unique<DeviceActor>(config));
        devices.back()->attach(engine);
    }

    std::vector<std::unique_ptr<SessionActor>> sessions;
    std::vector<uint32_t> sessionActorIds(config.sessions, 0);
    sessions.reserve(config.sessions);
    for (uint32_t s = 0; s < config.sessions; ++s) {
        sessions.push_back(std::make_unique<SessionActor>(config, s));
        sessions.back()->deviceActorId =
            devices[s % config.devices]->actorId;
        sessions.back()->attach(engine);
        sessionActorIds[s] = sessions.back()->actorId;
    }
    for (auto &dev : devices)
        dev->sessionActorIds = &sessionActorIds;

    // Kickoffs spread deterministically over the arrival window.
    for (uint32_t s = 0; s < config.sessions; ++s) {
        sim::Nanos at = sim::Nanos(
            (uint64_t(config.arrivalSpread) * s) / config.sessions);
        engine.post(at, sim::kPriorityDefault, sessionActorIds[s],
                    SessionActor::kKick, s);
    }

    if (!engine.runUntilIdle(uint64_t(config.sessions) * 1000 +
                             1000000)) {
        report.violations.push_back("fleet: event budget exhausted");
    }

    for (auto &dev : devices) {
        dev->closeRegSpan();
        dev->dmaLane.flushSpans();
        report.expectedRegNanos += dev->expectedRegNanos;
        report.regBursts += dev->regBursts;
        const DmaLaneActor::LaneStats &lane = dev->dmaLane.stats();
        report.expectedDmaNanos +=
            lane.cryptoNanos + lane.transportNanos;
        report.dmaJobs += lane.jobs;
        report.dmaBytes += lane.bytes;
    }
    for (auto &sess : sessions)
        report.sessionsCompleted += sess->completed ? 1 : 0;
    report.regOps =
        report.regBursts * uint64_t(config.opsPerBurst);
    report.eventsDispatched = engine.stats().dispatched;
    report.maxQueued = engine.stats().maxQueued;
    report.virtualEnd = clock.now();
    report.spanRegNanos = recorder.namedTotal("reg_busy");
    report.spanDmaNanos = recorder.namedTotal("dma_busy");

    auto within1pct = [](sim::Nanos a, sim::Nanos b) {
        sim::Nanos diff = a > b ? a - b : b - a;
        sim::Nanos base = std::max<sim::Nanos>(std::max(a, b), 1);
        return diff * 100 <= base;
    };
    if (report.sessionsCompleted != config.sessions)
        report.violations.push_back("fleet: sessions did not finish");
    if (report.regBursts !=
        uint64_t(config.sessions) * config.burstsPerSession)
        report.violations.push_back("fleet: burst count mismatch");
    if (report.dmaBytes !=
        uint64_t(config.sessions) * config.dmaBytesPerSession)
        report.violations.push_back("fleet: dma byte count mismatch");
    if (!within1pct(report.expectedRegNanos, report.spanRegNanos))
        report.violations.push_back(
            "fleet: reg span sum diverges from cost-model total");
    if (!within1pct(report.expectedDmaNanos, report.spanDmaNanos))
        report.violations.push_back(
            "fleet: dma span sum diverges from cost-model total");
    report.ok = report.violations.empty();

    report.traceJson = recorder.chromeTraceJson();
    report.metricsText = metricsReg.renderText();
    return report;
}

} // namespace salus::core
