/**
 * @file
 * Fleet-scale event-driven simulation: N user sessions spread across
 * M FPGA devices, each session alternating secure register bursts and
 * sealed DMA transfers with think time in between. Built entirely on
 * sim::Engine actors, so the whole fleet shares ONE virtual clock yet
 * every device's register lane and DMA lane makes progress
 * concurrently — the scale regime the lockstep testbed loop cannot
 * reach (it serializes every device on the wire model).
 *
 * Costs come straight from sim::CostModel (batch crypto, PCIe RTT and
 * bandwidth, sealed-DMA crypto with windowed overlap), and every busy
 * period lands in the trace as a coalesced span, so the run proves
 * its own accounting: per-phase span sums must match the cost-model
 * totals the actors accrued (1% tolerance in the report's ok flag;
 * exact in practice). Same seed = byte-identical trace + metrics —
 * the determinism CI gate runs a 10k-session fleet twice and byte-
 * compares the artifacts.
 */

#ifndef SALUS_SALUS_FLEET_SIM_HPP
#define SALUS_SALUS_FLEET_SIM_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "sim/cost_model.hpp"

namespace salus::core {

/** Knobs for one fleet-scale run. Defaults give a quick smoke; the
 *  scale bench sweeps sessions × devices up to 10k × 256. */
struct FleetSimConfig
{
    uint64_t seed = 1;
    uint32_t sessions = 1000;
    uint32_t devices = 16;
    /** Register-channel bursts per session (before its DMA job). */
    uint32_t burstsPerSession = 3;
    uint32_t opsPerBurst = 32;
    /** Bulk bytes each session moves once its bursts finish. */
    uint64_t dmaBytesPerSession = 64 * 1024;
    uint32_t dmaChunkBytes = 16 * 1024;
    uint32_t dmaWindow = 8;
    /** Session kickoff times are spread uniformly over this span. */
    sim::Nanos arrivalSpread = 50 * sim::kMs;
    /** Mean think time between a session's bursts (seeded jitter in
     *  [mean/2, 3*mean/2)). */
    sim::Nanos thinkMean = 2 * sim::kMs;
    /** Shuffle same-instant event order per seed (determinism audit:
     *  the metrics must not depend on tie order). */
    bool seededTieBreak = false;
    sim::CostModel cost;
};

/** Everything a fleet run proves, plus its exported artifacts. */
struct FleetSimReport
{
    uint64_t sessionsCompleted = 0;
    uint64_t regBursts = 0;
    uint64_t regOps = 0;
    uint64_t dmaJobs = 0;
    uint64_t dmaBytes = 0;
    uint64_t eventsDispatched = 0;
    uint64_t maxQueued = 0;
    sim::Nanos virtualEnd = 0;

    /** Cost-model totals accrued by the actors... */
    sim::Nanos expectedRegNanos = 0;
    sim::Nanos expectedDmaNanos = 0;
    /** ...and what the trace spans sum to (must match within 1%). */
    sim::Nanos spanRegNanos = 0;
    sim::Nanos spanDmaNanos = 0;

    /** Exported artifacts (byte-deterministic per seed). */
    std::string traceJson;
    std::string metricsText;

    bool ok = false;
    std::vector<std::string> violations;
};

/** Runs one fleet-scale simulation to completion. */
FleetSimReport runFleetSim(const FleetSimConfig &config);

} // namespace salus::core

#endif // SALUS_SALUS_FLEET_SIM_HPP
