#include "salus/boot_report.hpp"

#include <cstdio>

#include "common/errors.hpp"
#include "salus/sim_hooks.hpp"

namespace salus::core {

namespace {

struct PhaseRef
{
    const char *phase;
    double paperMs;
};

/** Figure 9 reference values (see EXPERIMENTS.md for derivation). */
const PhaseRef kFigure9[] = {
    {phases::kDeviceKeyDist, 1709.0},
    {phases::kBitstreamVerifEnc, 725.0},
    {phases::kBitstreamManip, 13787.0},
    {phases::kClDeployment, 45.0},
    {phases::kLocalAttest, 0.836},
    {phases::kClAuth, 1.3},
    {phases::kUserRa, 2568.0},
};

} // namespace

BootReport
buildBootReport(const sim::VirtualClock &clock)
{
    BootReport report;
    for (const auto &ref : kFigure9) {
        BootPhaseRow row;
        row.phase = ref.phase;
        row.modelTime = clock.totalFor(ref.phase);
        row.paperMs = ref.paperMs;
        report.modelTotal += row.modelTime;
        report.paperTotalMs += row.paperMs;
        report.rows.push_back(std::move(row));
    }
    return report;
}

const BootPhaseRow &
BootReport::dominant() const
{
    if (rows.empty())
        throw SalusError("empty boot report");
    const BootPhaseRow *best = &rows.front();
    for (const auto &row : rows) {
        if (row.modelTime > best->modelTime)
            best = &row;
    }
    return *best;
}

std::string
BootReport::render() const
{
    char line[128];
    std::string out;
    std::snprintf(line, sizeof(line), "%-28s %12s %12s\n", "phase",
                  "model (ms)", "paper (ms)");
    out += line;
    for (const auto &row : rows) {
        std::snprintf(line, sizeof(line), "%-28s %12.2f %12.2f\n",
                      row.phase.c_str(), double(row.modelTime) / 1e6,
                      row.paperMs);
        out += line;
    }
    std::snprintf(line, sizeof(line), "%-28s %12.2f %12.2f\n", "TOTAL",
                  double(modelTotal) / 1e6, paperTotalMs);
    out += line;
    return out;
}

} // namespace salus::core
