/**
 * @file
 * Wire-level crypto for the two SM protocols that cross the hostile
 * PCIe bus, shared by both endpoints (SM enclave on the host, SM
 * logic in the fabric):
 *
 *  1. CL attestation (paper Fig. 4a): SipHash-2-4 MACs over the nonce
 *     and DeviceDNA under Key_attest.
 *  2. The transparent secure register channel (paper §4.5 / Fig. 5):
 *     AES-128-CTR encrypted register transactions with truncated
 *     HMAC-SHA256 authentication and a strictly increasing session
 *     counter under Key_session / Ctr_session.
 *
 * Everything here is deterministic symmetric crypto — both sides
 * compute the same bytes, which is the whole point of RoT injection.
 */

#ifndef SALUS_SALUS_REG_CHANNEL_HPP
#define SALUS_SALUS_REG_CHANNEL_HPP

#include <cstdint>
#include <optional>
#include <vector>

#include "common/bytes.hpp"
#include "crypto/aes.hpp"

namespace salus::core::regchan {

// ---- CL attestation MACs (SipHash under Key_attest) -----------------

/** MAC_req = SipHash(Key_attest, N || DNA). */
uint64_t attestRequestMac(ByteView keyAttest, uint64_t nonce,
                          uint64_t dna);

/** MAC_rsp = SipHash(Key_attest, (N + 1) || DNA). */
uint64_t attestResponseMac(ByteView keyAttest, uint64_t nonce,
                           uint64_t dna);

// ---- Liveness heartbeat (fleet supervision) -------------------------
//
// A MAC'd liveness register exchange under Key_attest: the supervisor
// (via the SM enclave) challenges with a nonce, the SM logic answers
// with its heartbeat count. A shell cannot fabricate the response
// without the injected Key_attest, so a forged "alive" is detected
// and quarantines the device rather than masking its death.

/** Heartbeat challenge MAC = SipHash(Key_attest, N || DNA, 'H'). */
uint64_t heartbeatRequestMac(ByteView keyAttest, uint64_t nonce,
                             uint64_t dna);

/** Heartbeat response MAC = SipHash(Key_attest, (N+1) || DNA || count,
 *  'h') — binds the monotone heartbeat count against replay. */
uint64_t heartbeatResponseMac(ByteView keyAttest, uint64_t nonce,
                              uint64_t dna, uint64_t count);

// ---- Migration tickets (fleet extension) ----------------------------

/** MAC over a migration ticket's bound fields under the CURRENT
 *  deployment's Key_attest: SipHash(Key_attest, from || to || fromDna
 *  || toDna || N || fingerprint, 'M'). The supervisor cannot forge one
 *  and a committed (or otherwise retired) epoch kills the ticket. */
uint64_t migrationTicketMac(ByteView keyAttest, uint32_t fromDevice,
                            uint32_t toDevice, uint64_t fromDna,
                            uint64_t toDna, uint64_t nonce,
                            ByteView sourceFingerprint);

// ---- Secure register channel ----------------------------------------

/** A decrypted register operation. */
struct RegOp
{
    bool isWrite = false;
    uint32_t addr = 0;
    uint64_t data = 0;
};

/** An encrypted register request as it crosses the bus. */
struct SealedRegRequest
{
    uint64_t ctr = 0;  ///< session counter (cleartext, MACed)
    uint64_t ct0 = 0;  ///< ciphertext low half
    uint64_t ct1 = 0;  ///< ciphertext high half
    uint64_t mac = 0;  ///< truncated HMAC over ctr||ct
};

/** An encrypted register response. */
struct SealedRegResponse
{
    uint64_t ct0 = 0;
    uint64_t ct1 = 0;
    uint64_t mac = 0;
};

// Every seal/open entry has two forms: a ByteView form that expands
// the AES key schedule for the one call, and a `const crypto::Aes &`
// form that borrows a caller-cached schedule — the per-session fast
// path (the key is expanded once when the session opens or re-keys,
// not once per register transaction).

/** Encrypts and MACs a register operation (host side). */
SealedRegRequest sealRequest(ByteView aesKey, ByteView macKey,
                             uint64_t ctr, const RegOp &op);
SealedRegRequest sealRequest(const crypto::Aes &aes, ByteView macKey,
                             uint64_t ctr, const RegOp &op);

/** Verifies and decrypts a request (fabric side); nullopt = reject. */
std::optional<RegOp> openRequest(ByteView aesKey, ByteView macKey,
                                 const SealedRegRequest &req);
std::optional<RegOp> openRequest(const crypto::Aes &aes, ByteView macKey,
                                 const SealedRegRequest &req);

/** Encrypts and MACs a response (fabric side). */
SealedRegResponse sealResponse(ByteView aesKey, ByteView macKey,
                               uint64_t ctr, uint8_t status,
                               uint64_t data);
SealedRegResponse sealResponse(const crypto::Aes &aes, ByteView macKey,
                               uint64_t ctr, uint8_t status,
                               uint64_t data);

/** Verifies and decrypts a response (host side). */
std::optional<std::pair<uint8_t, uint64_t>>
openResponse(ByteView aesKey, ByteView macKey, uint64_t ctr,
             const SealedRegResponse &rsp);
std::optional<std::pair<uint8_t, uint64_t>>
openResponse(const crypto::Aes &aes, ByteView macKey, uint64_t ctr,
             const SealedRegResponse &rsp);

// ---- Batched register bursts (extension) -----------------------------
//
// One sealed burst carries N register operations under ONE counter
// stride and ONE truncated HMAC: op i is encrypted with the one-block
// AES-CTR keystream at counter ctrBase + i, and the MAC covers the
// session id, the stride base, the op count and every ciphertext
// block. The fabric accepts a burst only when ctrBase is strictly
// above the session's last consumed counter and advances the counter
// to ctrBase + count - 1 on success, so no individual op — and no
// whole burst — can ever be replayed. Each op plaintext is exactly
// one AES block, which lets both endpoints crypt bursts in place,
// block by block, with no intermediate copies.

/** Bytes per encrypted batch element (one AES block). */
constexpr size_t kRegBatchBlock = 16;
/** Most ops one sealed burst may carry (fabric buffer bound). */
constexpr size_t kMaxBatchOps = 256;

/** Per-op outcome carried in a batch response block. */
struct BatchResult
{
    uint8_t status = 0; ///< 0 ok; accelerator/channel codes otherwise
    uint64_t data = 0;  ///< read result (0 for writes)
};

/** An encrypted register burst as it crosses the bus. */
struct SealedRegBatch
{
    uint32_t sessionId = 0; ///< fabric session slot (cleartext, MACed)
    uint64_t ctrBase = 0;   ///< first counter of the stride
    Bytes payload;          ///< count x 16-byte ciphertext blocks
    uint64_t mac = 0;       ///< truncated HMAC over the whole burst
    size_t count() const { return payload.size() / kRegBatchBlock; }
};

/** An encrypted burst response (same stride, response direction). */
struct SealedBatchResponse
{
    Bytes payload;
    uint64_t mac = 0;
    size_t count() const { return payload.size() / kRegBatchBlock; }
};

// Streaming block primitives. Both endpoints process a burst in place
// (decrypt block -> execute -> encode + encrypt the response into the
// output buffer) without materialising a plaintext vector.

/** En/decrypts one 16-byte batch block in place with the one-block
 *  keystream at counter `ctr` (request or response direction). */
void cryptBatchBlock(ByteView aesKey, bool response, uint64_t ctr,
                     uint8_t *block);
void cryptBatchBlock(const crypto::Aes &aes, bool response, uint64_t ctr,
                     uint8_t *block);

/** Serializes an op into a 16-byte plaintext block (and back). */
void encodeBatchOp(const RegOp &op, uint8_t *block);
RegOp decodeBatchOp(const uint8_t *block);

/** Serializes a per-op result into a 16-byte block (and back). */
void encodeBatchResult(uint8_t status, uint64_t data, uint8_t *block);
BatchResult decodeBatchResult(const uint8_t *block);

/** Truncated HMAC over sessionId || ctrBase || count || payload with
 *  direction separation (request vs. response). */
uint64_t batchMac(ByteView macKey, uint32_t sessionId, uint64_t ctrBase,
                  ByteView payload, bool response);

/** Seals a burst of ops (host side, one-shot convenience). */
SealedRegBatch sealBatch(ByteView aesKey, ByteView macKey,
                         uint32_t sessionId, uint64_t ctrBase,
                         const std::vector<RegOp> &ops);
SealedRegBatch sealBatch(const crypto::Aes &aes, ByteView macKey,
                         uint32_t sessionId, uint64_t ctrBase,
                         const std::vector<RegOp> &ops);

/** Verifies and decrypts a burst (fabric side); nullopt = reject.
 *  Rejects empty, oversize, misaligned and counter-wrapping bursts
 *  before touching any crypto. */
std::optional<std::vector<RegOp>> openBatch(ByteView aesKey,
                                            ByteView macKey,
                                            const SealedRegBatch &batch);
std::optional<std::vector<RegOp>> openBatch(const crypto::Aes &aes,
                                            ByteView macKey,
                                            const SealedRegBatch &batch);

/** Seals the per-op results of a burst (fabric side). */
SealedBatchResponse
sealBatchResponse(ByteView aesKey, ByteView macKey, uint32_t sessionId,
                  uint64_t ctrBase,
                  const std::vector<BatchResult> &results);
SealedBatchResponse
sealBatchResponse(const crypto::Aes &aes, ByteView macKey,
                  uint32_t sessionId, uint64_t ctrBase,
                  const std::vector<BatchResult> &results);

/** Verifies and decrypts a burst response (host side). */
std::optional<std::vector<BatchResult>>
openBatchResponse(ByteView aesKey, ByteView macKey, uint32_t sessionId,
                  uint64_t ctrBase, size_t expectCount,
                  const SealedBatchResponse &rsp);
std::optional<std::vector<BatchResult>>
openBatchResponse(const crypto::Aes &aes, ByteView macKey,
                  uint32_t sessionId, uint64_t ctrBase,
                  size_t expectCount, const SealedBatchResponse &rsp);

// ---- Multi-session key fan-out (extension) ---------------------------
//
// The SM enclave multiplexes several user-enclave sessions over one
// deployed CL. Slot 0 is the bitstream-injected base session; every
// further slot's keys are derived on both ends from the CURRENT base
// session key material and a strictly increasing open nonce, so slots
// never share keystreams and a compromised tenant session reveals
// nothing about any other.

/** MAC authorizing a session-open command, keyed under the CURRENT
 *  base-session MAC key. */
uint64_t sessionOpenMac(ByteView baseMacKey, uint32_t slot,
                        uint64_t nonce);

/** Derives a slot's 48-byte session key block (AES-128 key + HMAC
 *  key) from the base 48-byte session key block and the open nonce.
 *  Deterministic: both ends converge. */
Bytes deriveSlotSessionKeys(ByteView baseKeySession, uint32_t slot,
                            uint64_t nonce);

// ---- Session re-keying (extension) -----------------------------------
//
// Both ends can roll the channel keys forward from a MACed nonce:
// new keys = KDF(old MAC key, nonce). Compromise of a *future* key
// state never reveals traffic sent before the roll.

/** MAC authorizing a re-key request under the CURRENT MAC key. */
uint64_t rekeyMac(ByteView macKey, uint64_t ctr, uint64_t nonce);

/** Derives the next (AES key, MAC key) pair from the current MAC key
 *  and the re-key nonce. Deterministic: both ends converge. */
std::pair<Bytes, Bytes> deriveRekeyedKeys(ByteView oldMacKey,
                                          uint64_t nonce);

} // namespace salus::core::regchan

#endif // SALUS_SALUS_REG_CHANNEL_HPP
