/**
 * @file
 * Wire-level crypto for the two SM protocols that cross the hostile
 * PCIe bus, shared by both endpoints (SM enclave on the host, SM
 * logic in the fabric):
 *
 *  1. CL attestation (paper Fig. 4a): SipHash-2-4 MACs over the nonce
 *     and DeviceDNA under Key_attest.
 *  2. The transparent secure register channel (paper §4.5 / Fig. 5):
 *     AES-128-CTR encrypted register transactions with truncated
 *     HMAC-SHA256 authentication and a strictly increasing session
 *     counter under Key_session / Ctr_session.
 *
 * Everything here is deterministic symmetric crypto — both sides
 * compute the same bytes, which is the whole point of RoT injection.
 */

#ifndef SALUS_SALUS_REG_CHANNEL_HPP
#define SALUS_SALUS_REG_CHANNEL_HPP

#include <cstdint>
#include <optional>

#include "common/bytes.hpp"

namespace salus::core::regchan {

// ---- CL attestation MACs (SipHash under Key_attest) -----------------

/** MAC_req = SipHash(Key_attest, N || DNA). */
uint64_t attestRequestMac(ByteView keyAttest, uint64_t nonce,
                          uint64_t dna);

/** MAC_rsp = SipHash(Key_attest, (N + 1) || DNA). */
uint64_t attestResponseMac(ByteView keyAttest, uint64_t nonce,
                           uint64_t dna);

// ---- Liveness heartbeat (fleet supervision) -------------------------
//
// A MAC'd liveness register exchange under Key_attest: the supervisor
// (via the SM enclave) challenges with a nonce, the SM logic answers
// with its heartbeat count. A shell cannot fabricate the response
// without the injected Key_attest, so a forged "alive" is detected
// and quarantines the device rather than masking its death.

/** Heartbeat challenge MAC = SipHash(Key_attest, N || DNA, 'H'). */
uint64_t heartbeatRequestMac(ByteView keyAttest, uint64_t nonce,
                             uint64_t dna);

/** Heartbeat response MAC = SipHash(Key_attest, (N+1) || DNA || count,
 *  'h') — binds the monotone heartbeat count against replay. */
uint64_t heartbeatResponseMac(ByteView keyAttest, uint64_t nonce,
                              uint64_t dna, uint64_t count);

// ---- Secure register channel ----------------------------------------

/** A decrypted register operation. */
struct RegOp
{
    bool isWrite = false;
    uint32_t addr = 0;
    uint64_t data = 0;
};

/** An encrypted register request as it crosses the bus. */
struct SealedRegRequest
{
    uint64_t ctr = 0;  ///< session counter (cleartext, MACed)
    uint64_t ct0 = 0;  ///< ciphertext low half
    uint64_t ct1 = 0;  ///< ciphertext high half
    uint64_t mac = 0;  ///< truncated HMAC over ctr||ct
};

/** An encrypted register response. */
struct SealedRegResponse
{
    uint64_t ct0 = 0;
    uint64_t ct1 = 0;
    uint64_t mac = 0;
};

/** Encrypts and MACs a register operation (host side). */
SealedRegRequest sealRequest(ByteView aesKey, ByteView macKey,
                             uint64_t ctr, const RegOp &op);

/** Verifies and decrypts a request (fabric side); nullopt = reject. */
std::optional<RegOp> openRequest(ByteView aesKey, ByteView macKey,
                                 const SealedRegRequest &req);

/** Encrypts and MACs a response (fabric side). */
SealedRegResponse sealResponse(ByteView aesKey, ByteView macKey,
                               uint64_t ctr, uint8_t status,
                               uint64_t data);

/** Verifies and decrypts a response (host side). */
std::optional<std::pair<uint8_t, uint64_t>>
openResponse(ByteView aesKey, ByteView macKey, uint64_t ctr,
             const SealedRegResponse &rsp);

// ---- Session re-keying (extension) -----------------------------------
//
// Both ends can roll the channel keys forward from a MACed nonce:
// new keys = KDF(old MAC key, nonce). Compromise of a *future* key
// state never reveals traffic sent before the roll.

/** MAC authorizing a re-key request under the CURRENT MAC key. */
uint64_t rekeyMac(ByteView macKey, uint64_t ctr, uint64_t nonce);

/** Derives the next (AES key, MAC key) pair from the current MAC key
 *  and the re-key nonce. Deterministic: both ends converge. */
std::pair<Bytes, Bytes> deriveRekeyedKeys(ByteView oldMacKey,
                                          uint64_t nonce);

} // namespace salus::core::regchan

#endif // SALUS_SALUS_REG_CHANNEL_HPP
