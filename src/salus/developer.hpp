/**
 * @file
 * The IP developer's toolkit (paper §2.2 development phase, §4.2
 * "heterogeneous application development").
 *
 * In the paper's cloud model the IP developer and the IP user are
 * different entities: the developer integrates the SM logic HDK,
 * compiles the CL, records H and Loc_*, and ships the artifact; the
 * data owner must be able to check that what cloud storage serves is
 * what the developer published. This module adds the missing link: a
 * developer identity that signs the (bitstream digest, logic-location)
 * bundle, so metadata provenance is verifiable offline — without the
 * developer being online during deployment (unlike ShEF's CA role).
 */

#ifndef SALUS_SALUS_DEVELOPER_HPP
#define SALUS_SALUS_DEVELOPER_HPP

#include "bitstream/compiler.hpp"
#include "crypto/ed25519.hpp"
#include "fpga/device.hpp"
#include "salus/cl_builder.hpp"
#include "salus/messages.hpp"

namespace salus::core {

/** A published CL release: bitstream + signed metadata. */
struct ClArtifact
{
    std::string name;      ///< release name ("conv-accel v1.2")
    Bytes bitstream;       ///< raw partial bitstream file
    Bytes metadata;        ///< serialized ClMetadata (contains H)
    Bytes developerPubKey; ///< Ed25519 identity of the publisher
    Bytes signature;       ///< over name + metadata

    /** Bytes covered by the developer signature. */
    Bytes signedPortion() const;
    Bytes serialize() const;
    static ClArtifact deserialize(ByteView data);
};

/**
 * Verifies an artifact end to end: developer signature, and that the
 * carried bitstream matches the signed digest H (so a storage-level
 * bitstream swap is caught before anything is deployed).
 */
bool verifyArtifact(const ClArtifact &artifact,
                    ByteView expectedDeveloperKey);

/** A developer identity + build environment. */
class DeveloperKit
{
  public:
    DeveloperKit(std::string developerName, crypto::RandomSource &rng);

    /** The identity the data owner pins. */
    const Bytes &publicKey() const { return identity_.publicKey; }
    const std::string &name() const { return name_; }

    /**
     * Full development flow: integrate the accelerator with the SM
     * logic, compile for the target partition, record logic
     * locations, and sign the release.
     */
    ClArtifact develop(const std::string &releaseName,
                       netlist::Cell accelCell,
                       const fpga::DeviceModelInfo &deviceModel,
                       uint32_t partitionId = 0);

    /** Layout of the most recent develop() call (for tests). */
    const ClLayout &lastLayout() const { return lastLayout_; }
    const netlist::ResourceVector &lastUtilization() const
    {
        return lastUtilization_;
    }

  private:
    std::string name_;
    crypto::Ed25519KeyPair identity_;
    ClLayout lastLayout_;
    netlist::ResourceVector lastUtilization_;
};

} // namespace salus::core

#endif // SALUS_SALUS_DEVELOPER_HPP
