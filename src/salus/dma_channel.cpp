#include "salus/dma_channel.hpp"

#include <algorithm>
#include <cstring>
#include <deque>

#include "common/serde.hpp"
#include "crypto/aes_ctr.hpp"
#include "crypto/ct.hpp"
#include "crypto/hmac.hpp"
#include "obs/trace.hpp"

namespace salus::core::dmachan {

namespace {

constexpr uint32_t kDmaMagic = 0x53444d41;     // "SDMA"
constexpr uint32_t kDmaRespMagic = 0x53444d52; // "SDMR"
constexpr uint8_t kDmaVersion = 1;

/** Builds the 16-byte CTR counter block for a direction + counter. */
Bytes
counterBlock(const char label[8], uint64_t ctr)
{
    Bytes block(16);
    std::memcpy(block.data(), label, 8);
    storeLe64(block.data() + 8, ctr);
    return block;
}

bool
macEqual(uint64_t a, uint64_t b)
{
    uint8_t ab[8], bb[8];
    storeLe64(ab, a);
    storeLe64(bb, b);
    return crypto::ctEqual(ByteView(ab, 8), ByteView(bb, 8));
}

uint64_t
truncatedHmac(ByteView macKey, ByteView msg)
{
    Bytes tag = crypto::hmacSha256(macKey, msg);
    return loadLe64(tag.data());
}

} // namespace

size_t
DmaDescriptor::sgBytes() const
{
    size_t total = 0;
    for (const DmaSgEntry &e : sg)
        total += e.len;
    return total;
}

size_t
dmaCtrBlocks(size_t bytes)
{
    return (bytes + kDmaBlock - 1) / kDmaBlock;
}

void
cryptDmaPayload(const crypto::Aes &aes, bool read, uint64_t ctrBase,
                uint8_t *data, size_t len)
{
    if (len == 0)
        return;
    crypto::AesCtr cipher(
        aes, counterBlock(read ? "SDMAREAD" : "SDMAWRIT", ctrBase));
    cipher.crypt(data, len);
}

void
cryptDmaPayload(ByteView aesKey, bool read, uint64_t ctrBase,
                uint8_t *data, size_t len)
{
    if (len == 0)
        return;
    cryptDmaPayload(crypto::Aes(aesKey), read, ctrBase, data, len);
}

uint64_t
descriptorMac(ByteView macKey, ByteView encodedSansMac)
{
    return truncatedHmac(macKey, encodedSansMac);
}

Bytes
encodeDescriptor(ByteView macKey, const DmaDescriptor &d)
{
    size_t encodedLen = dmaEncodedSize(d.sg.size(), d.payload.size());
    BinaryWriter w;
    w.writeU32(kDmaMagic);
    w.writeU8(kDmaVersion);
    uint8_t flags = 0;
    if (d.read)
        flags |= kDmaFlagRead;
    if (d.sync)
        flags |= kDmaFlagSync;
    w.writeU8(flags);
    w.writeU16(uint16_t(d.sg.size()));
    w.writeU32(d.sessionId);
    w.writeU32(uint32_t(encodedLen));
    w.writeU64(d.seq);
    w.writeU64(d.ctrBase);
    w.writeU64(d.respAddr);
    for (const DmaSgEntry &e : d.sg) {
        w.writeU64(e.addr);
        w.writeU32(e.len);
    }
    w.writeRaw(d.payload);
    uint64_t mac = descriptorMac(macKey, w.data());
    w.writeU64(mac);
    return w.take();
}

DmaDescriptor
decodeDescriptor(ByteView encoded)
{
    BinaryReader r(encoded);
    if (r.readU32() != kDmaMagic)
        throw SerdeError("dma descriptor: bad magic");
    if (r.readU8() != kDmaVersion)
        throw SerdeError("dma descriptor: unsupported version");
    uint8_t flags = r.readU8();
    if (flags & ~uint8_t(kDmaFlagRead | kDmaFlagSync))
        throw SerdeError("dma descriptor: unknown flags");
    uint16_t sgCount = r.readU16();
    if (sgCount == 0 || sgCount > kDmaMaxSg)
        throw SerdeError("dma descriptor: sg count out of range");

    DmaDescriptor d;
    d.read = (flags & kDmaFlagRead) != 0;
    d.sync = (flags & kDmaFlagSync) != 0;
    d.sessionId = r.readU32();
    uint32_t encodedLen = r.readU32();
    if (encodedLen != encoded.size())
        throw SerdeError("dma descriptor: length mismatch");
    d.seq = r.readU64();
    if (d.seq >= kDmaMaxSeq)
        throw SerdeError("dma descriptor: sequence out of range");
    d.ctrBase = r.readU64();
    d.respAddr = r.readU64();
    d.sg.reserve(sgCount);
    for (uint16_t i = 0; i < sgCount; ++i) {
        DmaSgEntry e;
        e.addr = r.readU64();
        e.len = r.readU32();
        if (e.len == 0)
            throw SerdeError("dma descriptor: empty sg entry");
        d.sg.push_back(e);
    }
    if (d.sgBytes() > kDmaMaxPayload)
        throw SerdeError("dma descriptor: payload over limit");
    size_t payloadLen = d.read ? 0 : d.sgBytes();
    if (r.remaining() != payloadLen + 8)
        throw SerdeError("dma descriptor: payload length mismatch");
    d.payload = r.readRaw(payloadLen);
    d.mac = r.readU64();
    return d;
}

bool
verifyDescriptorMac(ByteView macKey, ByteView encoded)
{
    if (encoded.size() < kDmaHeaderBytes + 8)
        return false;
    uint64_t expect = descriptorMac(
        macKey, ByteView(encoded.data(), encoded.size() - 8));
    uint64_t got = loadLe64(encoded.data() + encoded.size() - 8);
    return macEqual(expect, got);
}

Bytes
sealReadResponse(const crypto::Aes &aes, ByteView macKey,
                 uint32_t sessionId, uint64_t seq, uint64_t ctrBase,
                 ByteView plain)
{
    BinaryWriter w;
    w.writeU32(kDmaRespMagic);
    w.writeU32(sessionId);
    w.writeU32(uint32_t(plain.size()));
    w.writeU64(seq);
    w.writeU64(ctrBase);
    Bytes ct(plain.begin(), plain.end());
    cryptDmaPayload(aes, true, ctrBase, ct.data(), ct.size());
    w.writeRaw(ct);
    uint64_t mac = truncatedHmac(macKey, w.data());
    w.writeU64(mac);
    return w.take();
}

Bytes
sealReadResponse(ByteView aesKey, ByteView macKey, uint32_t sessionId,
                 uint64_t seq, uint64_t ctrBase, ByteView plain)
{
    return sealReadResponse(crypto::Aes(aesKey), macKey, sessionId, seq,
                            ctrBase, plain);
}

std::optional<Bytes>
openReadResponse(const crypto::Aes &aes, ByteView macKey,
                 uint32_t sessionId, uint64_t seq, uint64_t ctrBase,
                 ByteView blob)
{
    if (blob.size() < kDmaRespHeaderBytes + 8)
        return std::nullopt;
    BinaryReader r(blob);
    if (r.readU32() != kDmaRespMagic)
        return std::nullopt;
    if (r.readU32() != sessionId)
        return std::nullopt;
    uint32_t len = r.readU32();
    if (r.readU64() != seq || r.readU64() != ctrBase)
        return std::nullopt;
    if (len > kDmaMaxPayload || r.remaining() != size_t(len) + 8)
        return std::nullopt;
    uint64_t expect =
        truncatedHmac(macKey, ByteView(blob.data(), blob.size() - 8));
    uint64_t got = loadLe64(blob.data() + blob.size() - 8);
    if (!macEqual(expect, got))
        return std::nullopt;
    Bytes plain = r.readRaw(len);
    cryptDmaPayload(aes, true, ctrBase, plain.data(), plain.size());
    return plain;
}

std::optional<Bytes>
openReadResponse(ByteView aesKey, ByteView macKey, uint32_t sessionId,
                 uint64_t seq, uint64_t ctrBase, ByteView blob)
{
    return openReadResponse(crypto::Aes(aesKey), macKey, sessionId, seq,
                            ctrBase, blob);
}

uint64_t
ackMac(ByteView macKey, uint32_t sessionId, uint64_t ackSeq)
{
    Bytes msg(16);
    storeLe32(msg.data(), sessionId);
    storeLe64(msg.data() + 4, ackSeq);
    std::memcpy(msg.data() + 12, "dack", 4);
    return truncatedHmac(macKey, msg);
}

// ---- Sliding-window engine -------------------------------------------

DmaWindowEngine::DmaWindowEngine(DmaWindowHooks hooks, Options opts)
    : hooks_(std::move(hooks)), opts_(opts)
{
    opts_.window = std::clamp<size_t>(opts_.window, 1, kDmaMaxWindow);
    if (opts_.maxAttempts == 0)
        opts_.maxAttempts = 1;
}

void
DmaWindowEngine::spendCrypto(sim::Nanos cost, DmaTransferReport &report)
{
    if (cost <= 0)
        return;
    // Double-buffered keystream precompute: transport time already
    // spent on the clock has bought us budget to hide crypto behind.
    sim::Nanos hidden = std::min(cost, overlapBudget_);
    overlapBudget_ -= hidden;
    report.hiddenCryptoNanos += hidden;
    sim::Nanos exposed = cost - hidden;
    if (exposed > 0) {
        hooks_.sim.spend(phases::kDmaCrypto, exposed);
        report.cryptoNanos += exposed;
    }
}

void
DmaWindowEngine::spendTransport(sim::Nanos cost,
                                DmaTransferReport &report)
{
    if (cost <= 0)
        return;
    hooks_.sim.spend(phases::kDmaTransport, cost);
    report.transportNanos += cost;
    overlapBudget_ = std::min(overlapBudget_ + cost, overlapCap_);
}

DmaTransferReport
DmaWindowEngine::run(const std::vector<DmaDescriptorWork> &work)
{
    DmaTransferReport report;
    overlapBudget_ = 0;
    overlapCap_ = 0;

    const sim::CostModel *cost = hooks_.sim.cost;
    uint64_t totalBytes = 0;
    for (const DmaDescriptorWork &w : work) {
        totalBytes += w.payloadBytes;
        if (cost)
            overlapCap_ = std::max(
                overlapCap_, 2 * cost->dmaCrypto(w.payloadBytes));
    }
    obs::Span span(obs::Category::Channel, "dma_transfer", totalBytes);

    auto now = [&]() -> sim::Nanos {
        return hooks_.sim.clock ? hooks_.sim.clock->now()
                                : sim::Nanos(0);
    };
    auto wireTime = [&](size_t bytes) -> sim::Nanos {
        return cost ? sim::transferTime(cost->pcieBandwidth, bytes)
                    : sim::Nanos(0);
    };
    // The ack for a descriptor is believable one RTT after its last
    // wire byte; gathers additionally wait for the response payload
    // to cross back.
    auto ackLatency = [&](const DmaDescriptorWork &w) -> sim::Nanos {
        if (!cost)
            return 0;
        return cost->pcieRtt +
               (w.read ? wireTime(w.payloadBytes) : sim::Nanos(0));
    };
    auto sealCost = [&](const DmaDescriptorWork &w) -> sim::Nanos {
        return cost ? cost->dmaCrypto(w.read ? 0 : w.payloadBytes)
                    : sim::Nanos(0);
    };

    std::deque<InFlight> inflight;

    // Stalls on the window's oldest descriptor, believes whatever the
    // (MAC-verified) cumulative ack says, and retransmits the cached
    // ciphertext when the front turns out to be lost or rejected.
    auto waitFront = [&]() -> bool {
        sim::Nanos due = inflight.front().ackDue;
        sim::Nanos t = now();
        spendTransport(due > t ? due - t : 0, report);
        uint64_t ackSeq = 0;
        if (!hooks_.readAck || !hooks_.readAck(ackSeq)) {
            report.status = 0xf9; // forged/unreadable ack
            return false;
        }
        bool popped = false;
        while (!inflight.empty() && inflight.front().ackDue <= now() &&
               inflight.front().seq < ackSeq) {
            const DmaDescriptorWork &w = work[inflight.front().workIndex];
            if (w.read) {
                // The response blob is decrypted as it lands.
                spendCrypto(cost ? cost->dmaCrypto(w.payloadBytes)
                                 : sim::Nanos(0),
                            report);
            }
            if (w.complete && !w.complete()) {
                report.status = 0xfb; // forged read response
                return false;
            }
            inflight.pop_front();
            popped = true;
        }
        if (!popped) {
            InFlight &f = inflight.front();
            if (f.attempts >= opts_.maxAttempts) {
                report.status = 0xf8; // retransmits exhausted
                return false;
            }
            ++f.attempts;
            ++report.retransmits;
            obs::count("dma.retransmits");
            spendTransport(wireTime(f.encoded.size()), report);
            if (hooks_.deliver)
                hooks_.deliver(f.seq, f.encoded);
            f.ackDue = now() + ackLatency(work[f.workIndex]);
        }
        obs::observe("dma.window_depth", inflight.size());
        return true;
    };

    for (size_t i = 0; i < work.size(); ++i) {
        const DmaDescriptorWork &w = work[i];
        spendCrypto(sealCost(w), report);
        Bytes encoded = w.seal ? w.seal() : Bytes();

        while (inflight.size() >= opts_.window)
            if (!waitFront())
                return report;

        spendTransport(wireTime(encoded.size()), report);
        if (hooks_.deliver)
            hooks_.deliver(w.seq, encoded);
        InFlight f;
        f.seq = w.seq;
        f.workIndex = i;
        f.encoded = std::move(encoded);
        f.ackDue = now() + ackLatency(w);
        inflight.push_back(std::move(f));
        report.maxInFlight = std::max(report.maxInFlight,
                                      uint32_t(inflight.size()));
        obs::observe("dma.window_depth", inflight.size());
        ++report.descriptors;
        report.bytes += w.payloadBytes;
    }
    while (!inflight.empty())
        if (!waitFront())
            return report;
    obs::count("dma.transfers");
    return report;
}

} // namespace salus::core::dmachan
