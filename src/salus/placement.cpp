#include "salus/placement.hpp"

#include <algorithm>

#include "common/errors.hpp"
#include "common/serde.hpp"
#include "crypto/siphash.hpp"
#include "obs/trace.hpp"

namespace salus::core {

// ---- Migration messages ---------------------------------------------

Bytes
MigrationTicket::serialize() const
{
    BinaryWriter w;
    w.writeU32(0x4d494754); // "MIGT"
    w.writeU32(fromDevice);
    w.writeU32(toDevice);
    w.writeU64(fromDna);
    w.writeU64(toDna);
    w.writeU64(nonce);
    w.writeBytes(sourceFingerprint);
    w.writeU64(mac);
    return w.take();
}

MigrationTicket
MigrationTicket::deserialize(ByteView data)
{
    BinaryReader r(data);
    if (r.readU32() != 0x4d494754)
        throw SerdeError("bad migration-ticket magic");
    MigrationTicket t;
    t.fromDevice = r.readU32();
    t.toDevice = r.readU32();
    if (t.fromDevice >= Placement::kMaxDevices ||
        t.toDevice >= Placement::kMaxDevices)
        throw SerdeError("migration ticket names an absurd device");
    t.fromDna = r.readU64();
    t.toDna = r.readU64();
    t.nonce = r.readU64();
    t.sourceFingerprint = r.readBytes();
    if (t.sourceFingerprint.size() != 32)
        throw SerdeError("migration ticket fingerprint is not 32 bytes");
    t.mac = r.readU64();
    return t;
}

Bytes
MigrationRecord::serialize() const
{
    BinaryWriter w;
    w.writeU32(fromDevice);
    w.writeU32(toDevice);
    w.writeU64(atNanos);
    w.writeString(reason);
    w.writeBytes(oldFingerprint);
    w.writeBytes(newFingerprint);
    w.writeU8(attested);
    w.writeU64(parkedOps);
    return w.take();
}

MigrationRecord
MigrationRecord::deserialize(ByteView data)
{
    BinaryReader r(data);
    MigrationRecord m;
    m.fromDevice = r.readU32();
    m.toDevice = r.readU32();
    m.atNanos = r.readU64();
    m.reason = r.readString();
    m.oldFingerprint = r.readBytes();
    m.newFingerprint = r.readBytes();
    m.attested = r.readU8();
    if (m.attested > 1)
        throw SerdeError("bad migration flag");
    m.parkedOps = r.readU64();
    return m;
}

// ---- Placement ------------------------------------------------------

Placement::Placement(uint32_t deviceCount, uint64_t seed)
    : deviceCount_(std::max<uint32_t>(1, deviceCount)), seed_(seed)
{
    if (deviceCount_ > kMaxDevices)
        throw SalusError("placement: device count exceeds " +
                         std::to_string(kMaxDevices));
    eligible_.assign(deviceCount_, 1);
    loads_.assign(deviceCount_, 0);
}

uint32_t
Placement::chooseTarget(uint64_t sessionId) const
{
    // The candidate pool is the eligible devices, in id order, so the
    // draw is independent of assignment history.
    std::vector<uint32_t> pool;
    pool.reserve(deviceCount_);
    for (uint32_t d = 0; d < deviceCount_; ++d)
        if (eligible_[d])
            pool.push_back(d);
    if (pool.empty())
        throw MigrationError("no eligible device for session " +
                             std::to_string(sessionId));
    if (pool.size() == 1)
        return pool.front();

    // Two independent seeded draws; the SipHash key folds the
    // placement seed so distinct fleets shard distinctly.
    uint8_t key[16];
    storeLe64(key, seed_);
    storeLe64(key + 8, ~seed_);
    uint8_t msg[9];
    storeLe64(msg, sessionId);
    msg[8] = 'A';
    uint32_t a = pool[crypto::sipHash24(ByteView(key, sizeof(key)),
                                        ByteView(msg, sizeof(msg))) %
                      pool.size()];
    msg[8] = 'B';
    uint32_t b = pool[crypto::sipHash24(ByteView(key, sizeof(key)),
                                        ByteView(msg, sizeof(msg))) %
                      pool.size()];
    // Power of two choices: lesser load wins, ties to the lower id.
    if (loads_[a] != loads_[b])
        return loads_[a] < loads_[b] ? a : b;
    return std::min(a, b);
}

uint32_t
Placement::pickTarget(uint64_t sessionId) const
{
    return chooseTarget(sessionId);
}

uint32_t
Placement::place(uint64_t sessionId)
{
    if (assignments_.count(sessionId))
        throw SalusError("placement: session " +
                         std::to_string(sessionId) + " already placed");
    if (assignments_.size() >= kMaxSessions)
        throw SalusError("placement: session table full");
    uint32_t device = chooseTarget(sessionId);
    assignments_[sessionId] = device;
    ++loads_[device];
    obs::count("placement.placed");
    return device;
}

uint32_t
Placement::migrate(uint64_t sessionId)
{
    auto it = assignments_.find(sessionId);
    if (it == assignments_.end())
        throw MigrationError("session " + std::to_string(sessionId) +
                             " is not placed");
    uint32_t from = it->second;
    uint32_t to = chooseTarget(sessionId);
    if (to != from) {
        --loads_[from];
        ++loads_[to];
        it->second = to;
        obs::count("placement.migrated");
    }
    return to;
}

void
Placement::release(uint64_t sessionId)
{
    auto it = assignments_.find(sessionId);
    if (it == assignments_.end())
        return;
    --loads_[it->second];
    assignments_.erase(it);
}

void
Placement::setEligible(uint32_t device, bool eligible)
{
    if (device >= deviceCount_)
        throw SalusError("placement: no such device " +
                         std::to_string(device));
    eligible_[device] = eligible ? 1 : 0;
}

bool
Placement::eligible(uint32_t device) const
{
    return device < deviceCount_ && eligible_[device] != 0;
}

bool
Placement::placed(uint64_t sessionId) const
{
    return assignments_.count(sessionId) != 0;
}

uint32_t
Placement::deviceOf(uint64_t sessionId) const
{
    auto it = assignments_.find(sessionId);
    if (it == assignments_.end())
        throw SalusError("placement: session " +
                         std::to_string(sessionId) + " is not placed");
    return it->second;
}

std::vector<uint64_t>
Placement::sessionsOn(uint32_t device) const
{
    std::vector<uint64_t> out;
    for (const auto &[session, dev] : assignments_)
        if (dev == device)
            out.push_back(session);
    return out;
}

uint32_t
Placement::load(uint32_t device) const
{
    return device < deviceCount_ ? loads_[device] : 0;
}

Bytes
Placement::serializeState() const
{
    BinaryWriter w;
    w.writeU32(0x53504c43); // "SPLC"
    w.writeU32(deviceCount_);
    w.writeU64(seed_);
    for (uint32_t d = 0; d < deviceCount_; ++d)
        w.writeU8(eligible_[d]);
    w.writeU32(uint32_t(assignments_.size()));
    for (const auto &[session, device] : assignments_) {
        w.writeU64(session);
        w.writeU32(device);
    }
    return w.take();
}

Placement
Placement::deserializeState(ByteView data)
{
    BinaryReader r(data);
    if (r.readU32() != 0x53504c43)
        throw SerdeError("bad placement-state magic");
    uint32_t devices = r.readU32();
    if (devices == 0 || devices > kMaxDevices)
        throw SerdeError("absurd placement device count");
    uint64_t seed = r.readU64();
    Placement p(devices, seed);
    for (uint32_t d = 0; d < devices; ++d) {
        uint8_t flag = r.readU8();
        if (flag > 1)
            throw SerdeError("bad placement eligibility flag");
        p.eligible_[d] = flag;
    }
    uint32_t count = r.readU32();
    if (count > kMaxSessions)
        throw SerdeError("absurd placement session count");
    for (uint32_t i = 0; i < count; ++i) {
        uint64_t session = r.readU64();
        uint32_t device = r.readU32();
        if (device >= devices)
            throw SerdeError("placement assignment outside the pool");
        if (p.assignments_.count(session))
            throw SerdeError("duplicate placement assignment");
        p.assignments_[session] = device;
        ++p.loads_[device];
    }
    return p;
}

} // namespace salus::core
