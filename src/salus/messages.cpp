#include "salus/messages.hpp"

#include "common/errors.hpp"
#include "common/serde.hpp"
#include "crypto/aes_gcm.hpp"
#include "crypto/sha256.hpp"

namespace salus::core {

Bytes
ClMetadata::serialize() const
{
    BinaryWriter w;
    w.writeBytes(digestH);
    w.writeBytes(logicLocations);
    w.writeString(keyAttestPath);
    w.writeString(keySessionPath);
    w.writeString(ctrSessionPath);
    return w.take();
}

ClMetadata
ClMetadata::deserialize(ByteView data)
{
    BinaryReader r(data);
    ClMetadata m;
    m.digestH = r.readBytes();
    m.logicLocations = r.readBytes();
    m.keyAttestPath = r.readString();
    m.keySessionPath = r.readString();
    m.ctrSessionPath = r.readString();
    return m;
}

Bytes
ClMetadata::digest() const
{
    return crypto::Sha256::digest(serialize());
}

Bytes
ClBootStatus::serialize() const
{
    BinaryWriter w;
    w.writeU8(deployed ? 1 : 0);
    w.writeU8(attested ? 1 : 0);
    w.writeString(failure);
    return w.take();
}

ClBootStatus
ClBootStatus::deserialize(ByteView data)
{
    BinaryReader r(data);
    ClBootStatus s;
    s.deployed = r.readU8() != 0;
    s.attested = r.readU8() != 0;
    s.failure = r.readString();
    return s;
}

namespace {

Bytes
channelIv(const std::string &direction, uint64_t seq)
{
    // 12-byte IV: 4 bytes of direction hash + 8-byte sequence number.
    Bytes dirDigest = crypto::Sha256::digest(bytesFromString(direction));
    Bytes iv(12);
    std::copy(dirDigest.begin(), dirDigest.begin() + 4, iv.begin());
    storeLe64(iv.data() + 4, seq);
    return iv;
}

} // namespace

Bytes
channelSeal(ByteView sessionKey, const std::string &direction,
            uint64_t seq, ByteView plaintext)
{
    crypto::AesGcm gcm(sessionKey);
    Bytes iv = channelIv(direction, seq);
    Bytes aad = bytesFromString(direction);
    crypto::GcmSealed sealed = gcm.seal(iv, aad, plaintext);

    BinaryWriter w;
    w.writeU64(seq);
    w.writeBytes(sealed.ciphertext);
    w.writeBytes(sealed.tag);
    return w.take();
}

std::optional<Bytes>
channelOpen(ByteView sessionKey, const std::string &direction,
            uint64_t seq, ByteView sealed)
{
    try {
        BinaryReader r(sealed);
        uint64_t claimedSeq = r.readU64();
        if (claimedSeq != seq)
            return std::nullopt; // replay or reordering
        Bytes ciphertext = r.readBytes();
        Bytes tag = r.readBytes();

        crypto::AesGcm gcm(sessionKey);
        Bytes iv = channelIv(direction, seq);
        Bytes aad = bytesFromString(direction);
        return gcm.open(iv, aad, ciphertext, tag);
    } catch (const SerdeError &) {
        return std::nullopt;
    }
}

} // namespace salus::core
