#include "salus/messages.hpp"

#include "common/errors.hpp"
#include "common/serde.hpp"
#include "crypto/aes_gcm.hpp"
#include "crypto/sha256.hpp"

namespace salus::core {

Bytes
ClMetadata::serialize() const
{
    BinaryWriter w;
    w.writeBytes(digestH);
    w.writeBytes(logicLocations);
    w.writeString(keyAttestPath);
    w.writeString(keySessionPath);
    w.writeString(ctrSessionPath);
    return w.take();
}

ClMetadata
ClMetadata::deserialize(ByteView data)
{
    BinaryReader r(data);
    ClMetadata m;
    m.digestH = r.readBytes();
    m.logicLocations = r.readBytes();
    m.keyAttestPath = r.readString();
    m.keySessionPath = r.readString();
    m.ctrSessionPath = r.readString();
    return m;
}

Bytes
ClMetadata::digest() const
{
    return crypto::Sha256::digest(serialize());
}

namespace {

/** Magic prefix distinguishing journal blobs from other sealed state. */
constexpr uint32_t kJournalMagic = 0x534a524e; // "SJRN"
/** Sanity bound on every count field: the journal parser eats
 *  attacker-controlled storage, so absurd counts must die in serde,
 *  not in an allocation. */
constexpr uint32_t kJournalMaxEntries = 4096;

uint32_t
boundedCount(BinaryReader &r)
{
    uint32_t n = r.readU32();
    if (n > kJournalMaxEntries)
        throw SerdeError("journal count out of range");
    return n;
}

} // namespace

Bytes
SmJournal::serialize() const
{
    BinaryWriter w;
    w.writeU32(kJournalMagic);
    w.writeU64(version);
    w.writeU8(haveMetadata);
    w.writeBytes(metadata);
    w.writeU32(uint32_t(deviceKeys.size()));
    for (const auto &[dna, key] : deviceKeys) {
        w.writeU64(dna);
        w.writeBytes(key);
    }
    w.writeU32(uint32_t(devices.size()));
    for (const SmJournalDevice &d : devices) {
        w.writeU32(d.deviceId);
        w.writeU64(d.dna);
        w.writeU8(d.deployed);
        w.writeU8(d.attested);
        w.writeU8(d.haveSecrets);
        w.writeBytes(d.keyAttest);
        w.writeBytes(d.keySession);
        w.writeU64(d.ctrBase);
        w.writeU64(d.ctrReserve);
        w.writeU64(d.dmaSeqReserve);
        w.writeU8(d.havePendingRekey);
        w.writeBytes(d.pendingRekeyMacKey);
        w.writeU64(d.pendingRekeyNonce);
        w.writeU32(uint32_t(d.sessions.size()));
        for (const SmJournalSession &s : d.sessions) {
            w.writeU32(s.slot);
            w.writeBytes(s.keySession);
            w.writeU64(s.openNonce);
            w.writeU64(s.ctrReserve);
            w.writeU64(s.dmaSeqReserve);
        }
    }
    w.writeU32(activeDevice);
    w.writeU32(uint32_t(retiredFingerprints.size()));
    for (const Bytes &fp : retiredFingerprints)
        w.writeBytes(fp);
    return w.take();
}

SmJournal
SmJournal::deserialize(ByteView data)
{
    BinaryReader r(data);
    if (r.readU32() != kJournalMagic)
        throw SerdeError("bad journal magic");
    SmJournal j;
    j.version = r.readU64();
    j.haveMetadata = r.readU8();
    if (j.haveMetadata > 1)
        throw SerdeError("bad journal flag");
    j.metadata = r.readBytes();
    uint32_t nKeys = boundedCount(r);
    for (uint32_t i = 0; i < nKeys; ++i) {
        uint64_t dna = r.readU64();
        Bytes key = r.readBytes();
        if (key.size() != 32)
            throw SerdeError("bad device-key size in journal");
        j.deviceKeys.emplace_back(dna, std::move(key));
    }
    uint32_t nDevices = boundedCount(r);
    for (uint32_t i = 0; i < nDevices; ++i) {
        SmJournalDevice d;
        d.deviceId = r.readU32();
        d.dna = r.readU64();
        d.deployed = r.readU8();
        d.attested = r.readU8();
        d.haveSecrets = r.readU8();
        if (d.deployed > 1 || d.attested > 1 || d.haveSecrets > 1)
            throw SerdeError("bad journal flag");
        d.keyAttest = r.readBytes();
        d.keySession = r.readBytes();
        if (d.haveSecrets &&
            (d.keyAttest.size() != 16 || d.keySession.size() != 48))
            throw SerdeError("bad secret sizes in journal");
        d.ctrBase = r.readU64();
        d.ctrReserve = r.readU64();
        d.dmaSeqReserve = r.readU64();
        d.havePendingRekey = r.readU8();
        if (d.havePendingRekey > 1)
            throw SerdeError("bad journal flag");
        d.pendingRekeyMacKey = r.readBytes();
        d.pendingRekeyNonce = r.readU64();
        uint32_t nSessions = boundedCount(r);
        for (uint32_t k = 0; k < nSessions; ++k) {
            SmJournalSession s;
            s.slot = r.readU32();
            s.keySession = r.readBytes();
            if (s.keySession.size() != 48)
                throw SerdeError("bad session-key size in journal");
            s.openNonce = r.readU64();
            s.ctrReserve = r.readU64();
            s.dmaSeqReserve = r.readU64();
            d.sessions.push_back(std::move(s));
        }
        j.devices.push_back(std::move(d));
    }
    j.activeDevice = r.readU32();
    uint32_t nFps = boundedCount(r);
    for (uint32_t i = 0; i < nFps; ++i) {
        Bytes fp = r.readBytes();
        if (fp.size() != 32)
            throw SerdeError("bad fingerprint size in journal");
        j.retiredFingerprints.push_back(std::move(fp));
    }
    return j;
}

Bytes
ClBootStatus::serialize() const
{
    BinaryWriter w;
    w.writeU8(deployed ? 1 : 0);
    w.writeU8(attested ? 1 : 0);
    w.writeString(failure);
    return w.take();
}

ClBootStatus
ClBootStatus::deserialize(ByteView data)
{
    BinaryReader r(data);
    ClBootStatus s;
    s.deployed = r.readU8() != 0;
    s.attested = r.readU8() != 0;
    s.failure = r.readString();
    return s;
}

namespace {

Bytes
channelIv(const std::string &direction, uint64_t seq)
{
    // 12-byte IV: 4 bytes of direction hash + 8-byte sequence number.
    Bytes dirDigest = crypto::Sha256::digest(bytesFromString(direction));
    Bytes iv(12);
    std::copy(dirDigest.begin(), dirDigest.begin() + 4, iv.begin());
    storeLe64(iv.data() + 4, seq);
    return iv;
}

} // namespace

Bytes
channelSeal(ByteView sessionKey, const std::string &direction,
            uint64_t seq, ByteView plaintext)
{
    crypto::AesGcm gcm(sessionKey);
    Bytes iv = channelIv(direction, seq);
    Bytes aad = bytesFromString(direction);
    crypto::GcmSealed sealed = gcm.seal(iv, aad, plaintext);

    BinaryWriter w;
    w.writeU64(seq);
    w.writeBytes(sealed.ciphertext);
    w.writeBytes(sealed.tag);
    return w.take();
}

std::optional<Bytes>
channelOpen(ByteView sessionKey, const std::string &direction,
            uint64_t seq, ByteView sealed)
{
    try {
        BinaryReader r(sealed);
        uint64_t claimedSeq = r.readU64();
        if (claimedSeq != seq)
            return std::nullopt; // replay or reordering
        Bytes ciphertext = r.readBytes();
        Bytes tag = r.readBytes();

        crypto::AesGcm gcm(sessionKey);
        Bytes iv = channelIv(direction, seq);
        Bytes aad = bytesFromString(direction);
        return gcm.open(iv, aad, ciphertext, tag);
    } catch (const SerdeError &) {
        return std::nullopt;
    }
}

} // namespace salus::core
