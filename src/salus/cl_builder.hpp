/**
 * @file
 * Builds the combined custom-logic netlist: the developer's
 * accelerator plus the manufacturer-released SM logic HDK (paper
 * §4.1: "the SM logic and accelerator are integrated during
 * development, generating a single CL bitstream containing both").
 *
 * The SM logic reserves three zero-initialized BRAM cells for the
 * deployment-time secrets; the compiler's logic-location file later
 * tells the SM enclave where they sit in the bitstream.
 */

#ifndef SALUS_SALUS_CL_BUILDER_HPP
#define SALUS_SALUS_CL_BUILDER_HPP

#include <string>

#include "netlist/netlist.hpp"

namespace salus::core {

/** Well-known cell paths of a built CL design. */
struct ClLayout
{
    std::string smCellPath;       ///< SM logic block
    std::string keyAttestPath;    ///< reserved RoT BRAM
    std::string keySessionPath;   ///< reserved session-key BRAM
    std::string ctrSessionPath;   ///< reserved counter BRAM
    std::string accelCellPath;    ///< the developer's accelerator
};

/** A complete CL: netlist plus its well-known layout. */
struct ClDesign
{
    netlist::Netlist netlist;
    ClLayout layout;
};

/**
 * Integrates the SM logic with an accelerator.
 *
 * @param topName     top-level design name (unique per application).
 * @param accelCell   the developer's accelerator logic cell
 *                    (behaviorId + resources + params); it is placed
 *                    under "<top>/accel".
 * @param extraCells  additional accelerator-private cells (BRAMs etc.),
 *                    re-parented under "<top>/accel/".
 */
ClDesign buildClDesign(const std::string &topName,
                       netlist::Cell accelCell,
                       std::vector<netlist::Cell> extraCells = {});

/** Resource cost of the SM logic alone (paper Table 5 last row). */
netlist::ResourceVector smLogicResources();

} // namespace salus::core

#endif // SALUS_SALUS_CL_BUILDER_HPP
