/**
 * @file
 * Optional virtual-time hooks for protocol components. Unit tests run
 * with null hooks (pure logic); the boot benches wire in a clock and
 * the calibrated cost model to reproduce Figure 9.
 */

#ifndef SALUS_SALUS_SIM_HOOKS_HPP
#define SALUS_SALUS_SIM_HOOKS_HPP

#include "sim/clock.hpp"
#include "sim/cost_model.hpp"

namespace salus::core {

/** Nullable clock/cost pair. */
struct SimHooks
{
    sim::VirtualClock *clock = nullptr;
    const sim::CostModel *cost = nullptr;

    bool active() const { return clock != nullptr && cost != nullptr; }

    void
    spend(const std::string &phase, sim::Nanos duration) const
    {
        if (clock)
            clock->spend(phase, duration);
    }
};

/** RAII phase scope that tolerates null hooks. */
class PhaseScope
{
  public:
    PhaseScope(const SimHooks &hooks, const std::string &phase)
        : clock_(hooks.clock)
    {
        if (clock_)
            clock_->pushPhase(phase);
    }
    ~PhaseScope()
    {
        if (clock_)
            clock_->popPhase();
    }
    PhaseScope(const PhaseScope &) = delete;
    PhaseScope &operator=(const PhaseScope &) = delete;

  private:
    sim::VirtualClock *clock_;
};

/** Canonical phase names (Figure 9 legend). */
namespace phases {
inline const char *const kUserRa = "User RA";
inline const char *const kLocalAttest = "Local Attestation";
inline const char *const kDeviceKeyDist = "Device Key Dist.";
inline const char *const kBitstreamVerifEnc = "Bitstream Verif. & Enc.";
inline const char *const kBitstreamManip = "Bitstream Manipulation";
inline const char *const kClDeployment = "CL Deployment";
inline const char *const kClAuth = "CL Authentication";
// Steady-state secure channel breakdown (throughput bench legend).
inline const char *const kChanCrypto = "Channel Crypto";
inline const char *const kChanTransport = "Channel Transport";
// Bulk DMA data plane breakdown (dma-throughput bench legend). Crypto
// covers only the *exposed* seal time; keystream precompute hidden
// behind transport is accounted inside the transport stalls.
inline const char *const kDmaCrypto = "DMA Crypto";
inline const char *const kDmaTransport = "DMA Transport";
} // namespace phases

} // namespace salus::core

#endif // SALUS_SALUS_SIM_HOOKS_HPP
