/**
 * @file
 * Umbrella header: the full public API of the Salus reproduction.
 *
 * For most uses, include this and start from core::Testbed (a complete
 * simulated deployment) — see examples/quickstart.cpp. Individual
 * subsystem headers remain includable on their own for finer-grained
 * use (e.g. just the bitstream toolchain, or just the TEE model).
 */

#ifndef SALUS_SALUS_SALUS_HPP
#define SALUS_SALUS_SALUS_HPP

// Substrates
#include "bitstream/compiler.hpp"
#include "bitstream/encryptor.hpp"
#include "bitstream/manipulator.hpp"
#include "fpga/device.hpp"
#include "manufacturer/manufacturer.hpp"
#include "net/network.hpp"
#include "netlist/netlist.hpp"
#include "shell/attacks.hpp"
#include "shell/shell.hpp"
#include "sim/clock.hpp"
#include "sim/cost_model.hpp"
#include "tee/local_attest.hpp"
#include "tee/platform.hpp"
#include "tee/quote_verifier.hpp"

// The Salus protocol stack
#include "salus/boot_report.hpp"
#include "salus/cl_builder.hpp"
#include "salus/developer.hpp"
#include "salus/messages.hpp"
#include "salus/reg_channel.hpp"
#include "salus/secrets.hpp"
#include "salus/sm_enclave.hpp"
#include "salus/sm_logic.hpp"
#include "salus/testbed.hpp"
#include "salus/user_client.hpp"
#include "salus/user_enclave.hpp"

#endif // SALUS_SALUS_SALUS_HPP
