/**
 * @file
 * The secure-manager (SM) enclave application (paper §4.1, §5.2.2) —
 * the manufacturer-released SDK enclave that owns all secure CL
 * booting functionality:
 *
 *  - answers the user enclave's local attestation and receives the
 *    bitstream metadata (H, Loc_*) over the sealed channel;
 *  - remote-attests itself to the manufacturer's key-distribution
 *    service and receives Key_device wrapped to an ephemeral key that
 *    the quote itself binds (step ④);
 *  - verifies the fetched bitstream against H, generates fresh CL
 *    secrets, injects them by bitstream manipulation, encrypts with
 *    Key_device and hands the ciphertext to the shell (steps ⑤⑥);
 *  - runs the symmetric CL attestation of Fig. 4a (step ⑦);
 *  - afterwards serves as the host end of the secure register channel
 *    (§4.5).
 *
 * Fleet extensions (beyond the paper's single-device prototype):
 *
 *  - manages a pool of FPGA devices, each with its own DeviceDNA and
 *    Key_device; exactly one device is *active* (serves the session);
 *  - answers MAC'd liveness probes for the fleet supervisor
 *    (heartbeatDevice);
 *  - fails over to a spare on demand (setActiveDevice): the dead
 *    device's session secrets are retired (fingerprinted + wiped) and
 *    may never be reused — deployCl asserts every fresh secret set
 *    against the retirement list;
 *  - persists its deployment table + session metadata in a sealed,
 *    monotonic-counter-versioned journal so a crashed SM instance can
 *    rehydrate (rehydrate()); rolled-back journals are rejected and
 *    the enclave fails closed.
 *
 * Public methods model the untrusted host process invoking enclave
 * entry points: every argument is attacker-influencable, and nothing
 * secret ever appears in a return value unless sealed/encrypted.
 */

#ifndef SALUS_SALUS_SM_ENCLAVE_HPP
#define SALUS_SALUS_SM_ENCLAVE_HPP

#include <functional>
#include <map>
#include <set>
#include <vector>

#include "net/network.hpp"
#include "salus/dma_channel.hpp"
#include "salus/messages.hpp"
#include "salus/placement.hpp"
#include "salus/reg_channel.hpp"
#include "salus/secrets.hpp"
#include "salus/sim_hooks.hpp"
#include "shell/shell.hpp"
#include "sim/fault.hpp"
#include "tee/local_attest.hpp"
#include "tee/platform.hpp"

namespace salus::core {

/** Channel message types (user enclave -> SM enclave). */
enum class SmChannelMsg : uint8_t {
    SetMetadata = 1,
    RunSecureBoot = 2,
    SecureRegOp = 3,
    QueryStatus = 4,
    RekeySession = 5,   ///< roll the register-channel session keys
    SecureRegBatch = 6, ///< burst of ops over the batched channel
};

/** One FPGA the SM enclave can deploy to. */
struct SmDeviceBinding
{
    shell::Shell *shell = nullptr;
    uint64_t dna = 0; ///< CSP-advertised DeviceDNA
};

/** Host-side/service dependencies handed to the SM application. */
struct SmEnclaveDeps
{
    shell::Shell *shell = nullptr;
    net::Network *network = nullptr;
    std::string selfEndpoint;         ///< our RPC endpoint name
    std::string manufacturerEndpoint; ///< key-distribution endpoint
    uint64_t instanceDeviceDna = 0;   ///< CSP-advertised FPGA identity
    /** The device pool. When empty, a single-device pool is built
     *  from the legacy shell/instanceDeviceDna fields above. */
    std::vector<SmDeviceBinding> devices;
    /** Pulls the CL bitstream file from (untrusted) cloud storage. */
    std::function<Bytes()> fetchBitstream;
    /** Retry schedule for transport faults (manufacturer round trip,
     *  secure-boot attempts, register-channel ops). The default
     *  disables retries; security rejections are never retried. */
    net::RetryPolicy retry;
    SimHooks sim;
    /** Fault injector consulted at journal-write crash points. */
    sim::FaultInjector *fault = nullptr;
    /** Host-provided journal storage (untrusted). When unset, the SM
     *  runs journal-less (legacy behaviour; no crash recovery). */
    std::function<void(ByteView)> storeJournal;
    std::function<Bytes()> fetchJournal;
    /** Invoked when a device exhausts the retry schedule on the
     *  register channel or secure boot — the fleet supervisor's cue
     *  to consider failover. */
    std::function<void(uint32_t, const ErrorContext &)> onDeviceFailure;
};

/** Tuning knobs for one windowed DMA transfer. */
struct SmDmaOptions
{
    size_t windowSize = 8; ///< descriptors kept in flight
    /** Payload bytes per descriptor. Writes are capped so an encoded
     *  descriptor fits one staging slot; reads so the sealed response
     *  fits one response slot. */
    size_t descriptorBytes = 64 * 1024;
    uint32_t maxAttempts = 8; ///< sends per descriptor before 0xf8
};

/** The SM enclave program. */
class SmEnclaveApp : public tee::Enclave
{
  public:
    SmEnclaveApp(tee::TeePlatform &platform, SmEnclaveDeps deps);

    /** The manufacturer-published SM enclave build. */
    static tee::EnclaveImage defaultImage();
    /** Measurement of defaultImage() — whitelisted for key release. */
    static tee::Measurement defaultMeasurement();

    // ---- Local attestation responder (untrusted-host entry) --------
    Bytes laAnswer(ByteView msg1);
    bool laConfirm(ByteView msg3);
    bool laEstablished() const;

    // ---- Multi-session peers (extension) -----------------------------
    //
    // Each peer is one user enclave with its own LA responder, sealed
    // channel sequence space, and fabric session slot (peer id ==
    // slot). Peer 0 is the legacy session owner; only it may set
    // metadata, run secure boot or re-key. Further peers get derived
    // Key_session material fanned out by kSmCmdOpenSession, so tenants
    // never share keystreams.

    /** Allocates the next peer/session slot (1..kSmMaxSessions-1).
     *  @throws SalusError when the fabric's slots are exhausted. */
    uint32_t createPeer();
    /** Peers allocated so far, including the implicit peer 0. */
    size_t peerCount() const;

    Bytes laAnswer(uint32_t peer, ByteView msg1);
    bool laConfirm(uint32_t peer, ByteView msg3);
    bool laEstablished(uint32_t peer) const;

    // ---- Sealed channel from the user enclave -----------------------
    /**
     * Handles one sealed channel request and returns the sealed
     * response. Garbage in -> empty reply out (never throws for
     * attacker-controlled input). Refused entirely after a failed
     * journal recovery (fail closed).
     */
    Bytes channelRequest(ByteView sealed);
    /** Same, on a specific peer's channel. */
    Bytes channelRequest(uint32_t peer, ByteView sealed);

    /**
     * Sends a burst of register ops over the batched secure channel on
     * the given fabric session slot (0 = base session). Chunks beyond
     * regchan::kMaxBatchOps transparently; one result per op, in
     * order. Channel-level failures surface as per-op statuses: 0xfd
     * no attested CL, 0xfc the fabric rejected every sealed attempt,
     * 0xfb the response failed authentication.
     */
    std::vector<regchan::BatchResult>
    secureRegBatch(uint32_t slot, const std::vector<regchan::RegOp> &ops);

    // ---- Bulk data plane (sealed DMA descriptors) --------------------
    using DmaOptions = SmDmaOptions;

    /**
     * Moves `data` into device DRAM at `addr` through the sliding-
     * window secure DMA plane: the payload is chunked into AES-CTR-
     * encrypted, HMAC-sealed descriptors whose counter stride is bound
     * to the per-slot sequence number, so replay is impossible and
     * retransmits resend identical ciphertext. Report statuses: 0 ok,
     * 0xfd no attested CL behind the channel, 0xf8 retransmits
     * exhausted, 0xf9 forged ack, 0xfb forged read response.
     */
    dmachan::DmaTransferReport dmaWrite(uint32_t slot, uint64_t addr,
                                        ByteView data,
                                        const DmaOptions &opts = {});
    /** Scatter variant: `data` is scattered across `sg` in order. */
    dmachan::DmaTransferReport
    dmaWriteSg(uint32_t slot,
               const std::vector<dmachan::DmaSgEntry> &sg, ByteView data,
               const DmaOptions &opts = {});
    /** Gathers `len` bytes from device DRAM at `addr` into `out`;
     *  responses come back sealed under the read-direction keystream
     *  and are rejected wholesale on any MAC mismatch. */
    dmachan::DmaTransferReport dmaRead(uint32_t slot, uint64_t addr,
                                       size_t len, Bytes &out,
                                       const DmaOptions &opts = {});

    // ---- Extensions beyond the paper's prototype ---------------------
    /**
     * Exports Key_device of the active device sealed to this
     * enclave's identity so a later SM instance on the same platform
     * can skip the manufacturer round trip (standard SGX practice;
     * ablation-benched).
     * @return empty when no device key is held.
     */
    Bytes exportSealedDeviceKey() const;

    /**
     * Imports a sealed device key for the active device. Fails
     * (returns false) when the blob was sealed by a different enclave
     * identity or platform, or was tampered with.
     */
    bool importSealedDeviceKey(ByteView sealedBlob);

    /**
     * Rolls the secure register channel's session keys forward
     * (forward freshness; see regchan::deriveRekeyedKeys). Both ends
     * converge on the new keys; the old ones are wiped.
     */
    bool rekeySession();

    /**
     * Runtime re-attestation heartbeat: re-runs the Fig. 4a exchange
     * against the currently loaded CL. The paper defers runtime
     * attestation to future work (§2.1); this detects the "runtime
     * bitstream replacement" attack it names, because a swapped CL
     * cannot hold this deployment's Key_attest.
     */
    bool reattestCl();

    // ---- Fleet supervision ------------------------------------------
    /** Outcome of one liveness probe against a pool device. */
    struct HeartbeatResult
    {
        bool reachable = false; ///< the bus produced a sane response
        bool authentic = false; ///< response MAC verified (or spare)
        uint64_t count = 0;     ///< fabric beat counter (active dev)
        std::string failure;
        bool ok() const { return reachable && authentic; }
    };

    /**
     * Probes one pool device. The active, attested device answers a
     * SipHash-MAC'd challenge under Key_attest whose response binds a
     * monotone beat count — a shell cannot forge or replay "alive".
     * Spares (no CL, no injected secrets yet) get a plain bus-sanity
     * probe; their authenticity is established later by the cascaded
     * attestation that failover re-runs.
     */
    HeartbeatResult heartbeatDevice(uint32_t deviceId);

    /**
     * Fails the session over to another pool device. The current
     * session secrets are retired (fingerprinted, then wiped) — key
     * material bound to the old device is never reused — and the
     * deployment state resets so the next runSecureBoot targets the
     * new device with a fresh Key_session/Ctr_session.
     */
    bool setActiveDevice(uint32_t deviceId);

    uint32_t activeDevice() const { return activeDevice_; }
    size_t deviceCount() const { return devices_.size(); }

    // ---- Live session migration (fleet extension) -------------------
    /**
     * Issues a MAC'd authorization to move the live attested session
     * to `toDevice`. The ticket binds both DeviceDNAs, a fresh nonce
     * and the CURRENT secrets fingerprint under the CURRENT
     * Key_attest, so the untrusted supervisor can transport but never
     * forge, redirect or replay it across epochs.
     * @throws MigrationError on misuse: failed-closed enclave, no
     *         live attested session, unknown or already-active target.
     */
    MigrationTicket issueMigrationTicket(uint32_t toDevice);

    /**
     * Verifies a migration ticket and, when valid, performs the
     * trusted half of the move: retires (tombstones + wipes) the
     * source epoch's secrets, resets the deployment state and makes
     * `toDevice` active, journalling the switch. The next
     * runSecureBoot re-injects a fresh RoT on the target and re-runs
     * cascaded attestation. The ticket arrives through the untrusted
     * host, so every verification failure returns false (no throw):
     * wrong source, unknown target, mismatched DNAs, a fingerprint
     * from an already-retired epoch, or a forged MAC.
     */
    bool commitMigration(const MigrationTicket &ticket);

    /** SHA-256 fingerprint of the live session secrets (empty when
     *  none). Tests assert freshness across failover with this. */
    Bytes secretsFingerprint() const;
    /** True when `fp` names a retired (dead-device) secret set. */
    bool everRetiredFingerprint(ByteView fp) const;

    // ---- Crash recovery ----------------------------------------------
    enum class RecoveryStatus {
        NoJournal,  ///< fresh start, nothing persisted yet
        Recovered,  ///< journal adopted, devices re-attested
        RolledBack, ///< journal older than the monotonic counter
        Corrupt,    ///< seal/parse failure
    };

    struct RecoveryReport
    {
        RecoveryStatus status = RecoveryStatus::NoJournal;
        uint64_t version = 0; ///< adopted journal version
        uint64_t counter = 0; ///< monotonic counter at rehydration
        uint32_t reattestFailures = 0;
        std::string detail;
    };

    /**
     * Rehydrates a restarted SM instance from the host-stored sealed
     * journal. Rejects rollbacks (journal version behind the platform
     * monotonic counter) and corrupt blobs by FAILING CLOSED: the
     * enclave then refuses channel traffic until redeployed from
     * scratch. On success every device the journal claims attested is
     * re-attested before traffic is served.
     */
    RecoveryReport rehydrate();

    /** True when a failed recovery latched the enclave shut. */
    bool failedClosed() const { return failClosed_; }

    /** Journal commits so far — the crash-sweep tests enumerate
     *  injection points with this. */
    uint64_t journalWrites() const { return journalSeq_; }

    // ---- Introspection (trusted-side, used by tests/benches) --------
    const ClBootStatus &bootStatus() const { return status_; }
    bool haveDeviceKey() const
    {
        return deviceKeys_.count(activeDna()) != 0;
    }

  private:
    /** One derived fabric session the SM multiplexes (slots >= 1). */
    struct FabricSession
    {
        Bytes keySession;       ///< 48 bytes (AES + MAC), derived
        uint64_t openNonce = 0; ///< nonce the slot was opened with
        uint64_t ctr = 0;       ///< last counter handed out
        uint64_t reserve = 0;   ///< write-ahead journal reservation
        uint64_t dmaSeq = 0;    ///< next DMA descriptor sequence
        uint64_t dmaSeqReserve = 0; ///< write-ahead DMA seq bound
    };

    Bytes handlePlainRequest(uint32_t peer, ByteView plain);
    tee::LocalAttestResponder *peerLa(uint32_t peer) const;
    /** Opens the fabric session slot if not already open (lazy, after
     *  every failover the next batch re-opens it under the fresh base
     *  keys). */
    bool ensureFabricSession(uint32_t slot);
    /** Reserves a contiguous span of n counters on the slot, extending
     *  the journal's write-ahead reservation first when needed.
     *  @return the first counter of the span. */
    uint64_t reserveCtrSpan(uint32_t slot, uint64_t n);
    /** One sealed burst attempt. @return 0 ok (out filled), 0xfc
     *  fabric rejected, 0xfb response forged. */
    uint8_t secureRegBatchOnce(uint32_t slot, uint64_t ctrBase,
                               const std::vector<regchan::RegOp> &ops,
                               std::vector<regchan::BatchResult> &out);
    /** Returns the slot's cached expanded AES schedule, rebuilding it
     *  only when the key bytes differ from the cached copy (open,
     *  re-key, failover and journal restore all change the bytes, so
     *  the cache self-heals on every key-rolling path). */
    const crypto::Aes &slotAes(uint32_t slot, ByteView aesKey);
    /** Reserves n DMA descriptor sequence numbers on the slot,
     *  extending the journal's write-ahead reservation first when
     *  needed. @return the first sequence number of the span. */
    uint64_t reserveDmaSeqSpan(uint32_t slot, uint64_t n);
    /** The shared windowed-transfer driver behind dmaWrite/dmaRead. */
    dmachan::DmaTransferReport
    dmaTransfer(uint32_t slot, bool read,
                const std::vector<dmachan::DmaSgEntry> &sg,
                ByteView data, Bytes *out, const DmaOptions &opts);
    /** The bounded-attempt secure-boot loop (graceful degradation):
     *  retries transport-class failures with backoff, stops on
     *  security rejections, and redeploys after failed loads or
     *  uncorrectable configuration upsets. */
    void runSecureBoot();
    bool attemptSecureBoot(std::string &failure, bool &retryable);
    bool fetchDeviceKey(std::string &failure, bool &retryable);
    bool deployCl(std::string &failure, bool &retryable);
    bool attestCl(std::string &failure);
    /** Scrub probe after an attestation failure: corrects single-bit
     *  upsets and re-attests; false = redeploy needed. */
    bool tryScrubRecovery(std::string &failure);
    std::pair<uint8_t, uint64_t> secureRegOp(const regchan::RegOp &op);
    std::pair<uint8_t, uint64_t> secureRegOpOnce(const regchan::RegOp &op);
    void adoptPendingRekey();
    void clearPendingRekey();

    shell::Shell &activeShell() const;
    uint64_t activeDna() const;
    /** Fingerprints + wipes the live secrets (no-op when none). */
    void retireCurrentSecrets();
    /** Next strictly-increasing session counter; extends the
     *  journal's write-ahead reservation before handing out a value
     *  past it, so a crash can never re-issue a counter the fabric
     *  already consumed. */
    uint64_t nextSessionCtr();
    /** Persists the deployment table + session metadata: seal, store
     *  at version counter+1, then increment the counter. Crash points
     *  before and after the store are fault-injectable. */
    void commitJournal();
    SmJournal buildJournal() const;

    SmEnclaveDeps deps_;
    std::unique_ptr<tee::LocalAttestResponder> la_;
    uint64_t channelSeq_ = 0;
    /** Extra peers (index i = peer i+1) and their sequence spaces. */
    std::vector<std::unique_ptr<tee::LocalAttestResponder>> extraLa_;
    std::vector<uint64_t> extraSeq_;
    /** Open derived fabric sessions, keyed by slot (>= 1). */
    std::map<uint32_t, FabricSession> extraSessions_;
    /** Cached expanded AES schedules, one per session slot (see
     *  slotAes()). */
    struct SlotAesCache
    {
        Bytes key;
        std::unique_ptr<crypto::Aes> aes;
    };
    std::map<uint32_t, SlotAesCache> slotAesCache_;

    ClMetadata metadata_;
    bool haveMetadata_ = false;
    /** Key_device per DeviceDNA (one manufacturer round trip each). */
    std::map<uint64_t, Bytes> deviceKeys_;
    ClSecrets secrets_;
    bool haveSecrets_ = false;
    uint64_t sessionCtr_ = 0;
    /** Base-session DMA descriptor sequence space (slot 0). */
    uint64_t dmaSeq_ = 0;
    uint64_t dmaSeqReserve_ = 0;
    ClBootStatus status_;
    /** Set when a re-key command's completion was lost: the fabric
     *  may have rolled its keys while we kept the old ones. Holds the
     *  pre-roll MAC key + nonce needed to converge. */
    Bytes pendingRekeyMacKey_;
    uint64_t pendingRekeyNonce_ = 0;
    bool havePendingRekey_ = false;

    // ---- Fleet + journal state --------------------------------------
    std::vector<SmDeviceBinding> devices_;
    uint32_t activeDevice_ = 0;
    /** Write-ahead session-counter reservation persisted in the
     *  journal; restart resumes past it, never inside it. */
    uint64_t ctrReserve_ = 0;
    /** Fingerprints of every secret set ever retired. */
    std::set<Bytes> retiredFingerprints_;
    uint64_t journalSeq_ = 0;
    bool failClosed_ = false;
};

} // namespace salus::core

#endif // SALUS_SALUS_SM_ENCLAVE_HPP
