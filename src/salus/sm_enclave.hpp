/**
 * @file
 * The secure-manager (SM) enclave application (paper §4.1, §5.2.2) —
 * the manufacturer-released SDK enclave that owns all secure CL
 * booting functionality:
 *
 *  - answers the user enclave's local attestation and receives the
 *    bitstream metadata (H, Loc_*) over the sealed channel;
 *  - remote-attests itself to the manufacturer's key-distribution
 *    service and receives Key_device wrapped to an ephemeral key that
 *    the quote itself binds (step ④);
 *  - verifies the fetched bitstream against H, generates fresh CL
 *    secrets, injects them by bitstream manipulation, encrypts with
 *    Key_device and hands the ciphertext to the shell (steps ⑤⑥);
 *  - runs the symmetric CL attestation of Fig. 4a (step ⑦);
 *  - afterwards serves as the host end of the secure register channel
 *    (§4.5).
 *
 * Public methods model the untrusted host process invoking enclave
 * entry points: every argument is attacker-influencable, and nothing
 * secret ever appears in a return value unless sealed/encrypted.
 */

#ifndef SALUS_SALUS_SM_ENCLAVE_HPP
#define SALUS_SALUS_SM_ENCLAVE_HPP

#include <functional>

#include "net/network.hpp"
#include "salus/messages.hpp"
#include "salus/reg_channel.hpp"
#include "salus/secrets.hpp"
#include "salus/sim_hooks.hpp"
#include "shell/shell.hpp"
#include "tee/local_attest.hpp"
#include "tee/platform.hpp"

namespace salus::core {

/** Channel message types (user enclave -> SM enclave). */
enum class SmChannelMsg : uint8_t {
    SetMetadata = 1,
    RunSecureBoot = 2,
    SecureRegOp = 3,
    QueryStatus = 4,
    RekeySession = 5, ///< roll the register-channel session keys
};

/** Host-side/service dependencies handed to the SM application. */
struct SmEnclaveDeps
{
    shell::Shell *shell = nullptr;
    net::Network *network = nullptr;
    std::string selfEndpoint;         ///< our RPC endpoint name
    std::string manufacturerEndpoint; ///< key-distribution endpoint
    uint64_t instanceDeviceDna = 0;   ///< CSP-advertised FPGA identity
    /** Pulls the CL bitstream file from (untrusted) cloud storage. */
    std::function<Bytes()> fetchBitstream;
    /** Retry schedule for transport faults (manufacturer round trip,
     *  secure-boot attempts, register-channel ops). The default
     *  disables retries; security rejections are never retried. */
    net::RetryPolicy retry;
    SimHooks sim;
};

/** The SM enclave program. */
class SmEnclaveApp : public tee::Enclave
{
  public:
    SmEnclaveApp(tee::TeePlatform &platform, SmEnclaveDeps deps);

    /** The manufacturer-published SM enclave build. */
    static tee::EnclaveImage defaultImage();
    /** Measurement of defaultImage() — whitelisted for key release. */
    static tee::Measurement defaultMeasurement();

    // ---- Local attestation responder (untrusted-host entry) --------
    Bytes laAnswer(ByteView msg1);
    bool laConfirm(ByteView msg3);
    bool laEstablished() const;

    // ---- Sealed channel from the user enclave -----------------------
    /**
     * Handles one sealed channel request and returns the sealed
     * response. Garbage in -> empty reply out (never throws for
     * attacker-controlled input).
     */
    Bytes channelRequest(ByteView sealed);

    // ---- Extensions beyond the paper's prototype ---------------------
    /**
     * Exports Key_device sealed to this enclave's identity so a later
     * SM instance on the same platform can skip the manufacturer
     * round trip (standard SGX practice; ablation-benched).
     * @return empty when no device key is held.
     */
    Bytes exportSealedDeviceKey() const;

    /**
     * Imports a sealed device key. Fails (returns false) when the
     * blob was sealed by a different enclave identity or platform, or
     * was tampered with.
     */
    bool importSealedDeviceKey(ByteView sealedBlob);

    /**
     * Rolls the secure register channel's session keys forward
     * (forward freshness; see regchan::deriveRekeyedKeys). Both ends
     * converge on the new keys; the old ones are wiped.
     */
    bool rekeySession();

    /**
     * Runtime re-attestation heartbeat: re-runs the Fig. 4a exchange
     * against the currently loaded CL. The paper defers runtime
     * attestation to future work (§2.1); this detects the "runtime
     * bitstream replacement" attack it names, because a swapped CL
     * cannot hold this deployment's Key_attest.
     */
    bool reattestCl();

    // ---- Introspection (trusted-side, used by tests/benches) --------
    const ClBootStatus &bootStatus() const { return status_; }
    bool haveDeviceKey() const { return haveDeviceKey_; }

  private:
    Bytes handlePlainRequest(ByteView plain);
    /** The bounded-attempt secure-boot loop (graceful degradation):
     *  retries transport-class failures with backoff, stops on
     *  security rejections, and redeploys after failed loads or
     *  uncorrectable configuration upsets. */
    void runSecureBoot();
    bool attemptSecureBoot(std::string &failure, bool &retryable);
    bool fetchDeviceKey(std::string &failure, bool &retryable);
    bool deployCl(std::string &failure, bool &retryable);
    bool attestCl(std::string &failure);
    /** Scrub probe after an attestation failure: corrects single-bit
     *  upsets and re-attests; false = redeploy needed. */
    bool tryScrubRecovery(std::string &failure);
    std::pair<uint8_t, uint64_t> secureRegOp(const regchan::RegOp &op);
    std::pair<uint8_t, uint64_t> secureRegOpOnce(const regchan::RegOp &op);
    void adoptPendingRekey();
    void clearPendingRekey();

    SmEnclaveDeps deps_;
    std::unique_ptr<tee::LocalAttestResponder> la_;
    uint64_t channelSeq_ = 0;

    ClMetadata metadata_;
    bool haveMetadata_ = false;
    Bytes deviceKey_;
    bool haveDeviceKey_ = false;
    ClSecrets secrets_;
    bool haveSecrets_ = false;
    uint64_t sessionCtr_ = 0;
    ClBootStatus status_;
    /** Set when a re-key command's completion was lost: the fabric
     *  may have rolled its keys while we kept the old ones. Holds the
     *  pre-roll MAC key + nonce needed to converge. */
    Bytes pendingRekeyMacKey_;
    uint64_t pendingRekeyNonce_ = 0;
    bool havePendingRekey_ = false;
};

} // namespace salus::core

#endif // SALUS_SALUS_SM_ENCLAVE_HPP
