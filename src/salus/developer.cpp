#include "salus/developer.hpp"

#include "common/errors.hpp"
#include "common/serde.hpp"
#include "crypto/sha256.hpp"

namespace salus::core {

Bytes
ClArtifact::signedPortion() const
{
    BinaryWriter w;
    w.writeString(name);
    w.writeBytes(metadata);
    return w.take();
}

Bytes
ClArtifact::serialize() const
{
    BinaryWriter w;
    w.writeString(name);
    w.writeBytes(bitstream);
    w.writeBytes(metadata);
    w.writeBytes(developerPubKey);
    w.writeBytes(signature);
    return w.take();
}

ClArtifact
ClArtifact::deserialize(ByteView data)
{
    try {
        BinaryReader r(data);
        ClArtifact a;
        a.name = r.readString();
        a.bitstream = r.readBytes();
        a.metadata = r.readBytes();
        a.developerPubKey = r.readBytes();
        a.signature = r.readBytes();
        return a;
    } catch (const SerdeError &e) {
        throw SalusError(std::string("artifact parse: ") + e.what());
    }
}

bool
verifyArtifact(const ClArtifact &artifact, ByteView expectedDeveloperKey)
{
    if (!expectedDeveloperKey.empty() &&
        Bytes(expectedDeveloperKey.begin(), expectedDeveloperKey.end()) !=
            artifact.developerPubKey) {
        return false;
    }
    if (!crypto::ed25519Verify(artifact.developerPubKey,
                               artifact.signedPortion(),
                               artifact.signature)) {
        return false;
    }
    // The signed metadata pins H; the carried bitstream must match it.
    ClMetadata meta;
    try {
        meta = ClMetadata::deserialize(artifact.metadata);
    } catch (const SalusError &) {
        return false;
    }
    return crypto::Sha256::digest(artifact.bitstream) == meta.digestH;
}

DeveloperKit::DeveloperKit(std::string developerName,
                           crypto::RandomSource &rng)
    : name_(std::move(developerName)),
      identity_(crypto::ed25519Generate(rng))
{
}

ClArtifact
DeveloperKit::develop(const std::string &releaseName,
                      netlist::Cell accelCell,
                      const fpga::DeviceModelInfo &deviceModel,
                      uint32_t partitionId)
{
    const auto *partition = deviceModel.findPartition(partitionId);
    if (!partition)
        throw SalusError("develop: unknown partition");

    ClDesign design =
        buildClDesign(releaseName + "_top", std::move(accelCell));
    lastLayout_ = design.layout;

    bitstream::Compiler compiler(deviceModel.name);
    bitstream::CompiledDesign compiled =
        compiler.compile(design.netlist, *partition);
    lastUtilization_ = compiled.utilization;

    ClMetadata meta;
    meta.digestH = crypto::Sha256::digest(compiled.file);
    meta.logicLocations = compiled.logicLocations.serialize();
    meta.keyAttestPath = design.layout.keyAttestPath;
    meta.keySessionPath = design.layout.keySessionPath;
    meta.ctrSessionPath = design.layout.ctrSessionPath;

    ClArtifact artifact;
    artifact.name = releaseName;
    artifact.bitstream = std::move(compiled.file);
    artifact.metadata = meta.serialize();
    artifact.developerPubKey = identity_.publicKey;
    artifact.signature = crypto::ed25519Sign(identity_.seed,
                                             artifact.signedPortion());
    return artifact;
}

} // namespace salus::core
