/**
 * @file
 * The bulk-data side of the paper's memory channel: AES-CTR-encrypted
 * DMA descriptors with scatter-gather lists, sealed with one truncated
 * HMAC each, pushed through a sliding-window protocol so crypto for
 * descriptor N overlaps transport for descriptor N-1.
 *
 * Wire format ("SDMA" v1, little-endian):
 *
 *   offset  size  field
 *        0     4  magic 0x53444d41 ("SDMA")
 *        4     1  version (1)
 *        5     1  flags: bit0 = read (gather), bit1 = sync
 *        6     2  sgCount
 *        8     4  sessionId (fabric session slot)
 *       12     4  encodedLen (whole descriptor incl. trailing MAC)
 *       16     8  seq       (per-slot descriptor sequence number)
 *       24     8  ctrBase   (must equal seq * kDmaCtrStride)
 *       32     8  respAddr  (reads: DRAM address for the sealed reply)
 *       40  12*n  sg entries (u64 addr, u32 len)
 *         +  ...  payload ciphertext (writes; absent for reads)
 *         +    8  mac = truncated HMAC over every preceding byte
 *
 * Replay resistance comes from binding the AES counter stride to the
 * sequence number: ctrBase MUST equal seq * kDmaCtrStride, the MAC
 * covers both, the fabric applies each seq at most once and its
 * cumulative ack only ever moves forward. Counter strides across
 * applied descriptors are therefore strictly increasing, and a
 * replayed descriptor is dead on arrival whatever the interleaving.
 * Retransmits resend the *identical* ciphertext (no keystream reuse).
 *
 * The sync flag (MAC-covered) lets the host re-synchronise the
 * fabric's expected sequence forward after a crash-recovery gap; the
 * fabric only ever accepts a forward jump, so a replayed sync
 * descriptor cannot rewind the window.
 */

#ifndef SALUS_SALUS_DMA_CHANNEL_HPP
#define SALUS_SALUS_DMA_CHANNEL_HPP

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "common/bytes.hpp"
#include "crypto/aes.hpp"
#include "salus/sim_hooks.hpp"

namespace salus::core::dmachan {

/** AES block size — the unit the counter stride is denominated in. */
constexpr size_t kDmaBlock = 16;
/** Most scatter-gather entries one descriptor may carry. */
constexpr size_t kDmaMaxSg = 64;
/** Most payload bytes one descriptor may carry. */
constexpr size_t kDmaMaxPayload = size_t(1) << 20;
/** Counter blocks reserved per sequence number (1 MiB / 16 B). Every
 *  descriptor's ctrBase is seq * this, which both pins the keystream
 *  to the sequence number and keeps strides disjoint. */
constexpr uint64_t kDmaCtrStride = kDmaMaxPayload / kDmaBlock;
/** Largest sliding window either end will entertain (fabric reorder
 *  buffer bound == host in-flight bound). */
constexpr size_t kDmaMaxWindow = 16;
/** Sequence numbers above this would overflow the counter stride. */
constexpr uint64_t kDmaMaxSeq = uint64_t(1) << 40;

/** Descriptor flag bits. */
constexpr uint8_t kDmaFlagRead = 0x01;
constexpr uint8_t kDmaFlagSync = 0x02;

/** Fixed wire-format sizes (shared by host, fabric and fuzzers). */
constexpr size_t kDmaHeaderBytes = 40;
constexpr size_t kDmaSgEntryBytes = 12;
constexpr size_t kDmaRespHeaderBytes = 28;
/** Read-response blob size for a given gather length. */
constexpr size_t kDmaRespOverhead = kDmaRespHeaderBytes + 8;
/** Upper bound on any encoded descriptor. */
constexpr size_t kDmaMaxEncoded = kDmaHeaderBytes +
                                  kDmaMaxSg * kDmaSgEntryBytes +
                                  kDmaMaxPayload + 8;

/** Encoded wire size of a descriptor carrying `sgCount` entries and
 *  `payloadBytes` of ciphertext (0 for gathers): header + sg list +
 *  payload + trailing MAC. Shared by the real encoder and the
 *  event-driven lane model so their wire-time math cannot drift. */
constexpr size_t
dmaEncodedSize(size_t sgCount, size_t payloadBytes)
{
    return kDmaHeaderBytes + sgCount * kDmaSgEntryBytes + payloadBytes +
           8;
}

/** One scatter-gather element (device-DRAM address + length). */
struct DmaSgEntry
{
    uint64_t addr = 0;
    uint32_t len = 0;
};

/** A decoded (but still payload-encrypted) DMA descriptor. */
struct DmaDescriptor
{
    bool read = false;
    bool sync = false;
    uint32_t sessionId = 0;
    uint64_t seq = 0;
    uint64_t ctrBase = 0;
    uint64_t respAddr = 0;
    std::vector<DmaSgEntry> sg;
    Bytes payload; ///< ciphertext (writes), empty (reads)
    uint64_t mac = 0;

    /** Total bytes named by the scatter-gather list. */
    size_t sgBytes() const;
};

/** Counter blocks a payload of `bytes` consumes. */
size_t dmaCtrBlocks(size_t bytes);

/** En/decrypts a DMA payload in place under the direction-separated
 *  CTR labels ("SDMAWRIT" host->device, "SDMAREAD" device->host).
 *  The `crypto::Aes` overloads borrow a caller-cached key schedule —
 *  the per-session fast path (one expansion per session, not one per
 *  megabyte descriptor). */
void cryptDmaPayload(ByteView aesKey, bool read, uint64_t ctrBase,
                     uint8_t *data, size_t len);
void cryptDmaPayload(const crypto::Aes &aes, bool read, uint64_t ctrBase,
                     uint8_t *data, size_t len);

/** Truncated HMAC over the encoded descriptor minus its MAC field. */
uint64_t descriptorMac(ByteView macKey, ByteView encodedSansMac);

/** Serializes a descriptor (payload must already be ciphertext) and
 *  computes its MAC. */
Bytes encodeDescriptor(ByteView macKey, const DmaDescriptor &d);

/**
 * Parses an encoded descriptor, validating magic, version, bounds and
 * internal length consistency. Does NOT check the MAC (the fabric
 * does that against its slot key).
 * @throws SerdeError on any malformed input.
 */
DmaDescriptor decodeDescriptor(ByteView encoded);

/** Constant-time MAC check of an encoded descriptor. */
bool verifyDescriptorMac(ByteView macKey, ByteView encoded);

// ---- Read responses --------------------------------------------------
//
// The fabric answers a gather descriptor by sealing the collected
// bytes into a response blob at the descriptor's respAddr: "SDMR"
// magic, sessionId, seq, ctrBase echoed from the request, payload
// encrypted under the "SDMAREAD" label at the same stride, one
// truncated HMAC over everything before it.

/** Seals a read-response blob (fabric side). */
Bytes sealReadResponse(ByteView aesKey, ByteView macKey,
                       uint32_t sessionId, uint64_t seq,
                       uint64_t ctrBase, ByteView plain);
Bytes sealReadResponse(const crypto::Aes &aes, ByteView macKey,
                       uint32_t sessionId, uint64_t seq,
                       uint64_t ctrBase, ByteView plain);

/** Verifies and decrypts a read-response blob (host side); empty
 *  optional = forged or mismatched. */
std::optional<Bytes> openReadResponse(ByteView aesKey, ByteView macKey,
                                      uint32_t sessionId, uint64_t seq,
                                      uint64_t ctrBase, ByteView blob);
std::optional<Bytes> openReadResponse(const crypto::Aes &aes,
                                      ByteView macKey,
                                      uint32_t sessionId, uint64_t seq,
                                      uint64_t ctrBase, ByteView blob);

/** Cumulative-ack MAC: truncated HMAC over sessionId || ackSeq ||
 *  "dack". `ackSeq` is the lowest sequence number NOT yet applied, so
 *  a fresh slot acks 0 and the value only ever grows. */
uint64_t ackMac(ByteView macKey, uint32_t sessionId, uint64_t ackSeq);

// ---- Sliding-window engine -------------------------------------------

/** Outcome of one windowed transfer. */
struct DmaTransferReport
{
    /** 0 ok; 0xf8 retransmits exhausted; 0xf9 forged ack;
     *  0xfb forged read response. */
    uint8_t status = 0;
    uint64_t bytes = 0;        ///< payload bytes moved
    uint32_t descriptors = 0;  ///< descriptors delivered (first sends)
    uint32_t retransmits = 0;  ///< extra sends after loss/rejection
    uint32_t maxInFlight = 0;  ///< window-occupancy high-water mark
    sim::Nanos cryptoNanos = 0;       ///< exposed (clock-visible) crypto
    sim::Nanos hiddenCryptoNanos = 0; ///< precompute hidden behind transport
    sim::Nanos transportNanos = 0;    ///< wire time + window/ack stalls

    /** Fraction of total crypto hidden behind transport. */
    double overlapFraction() const
    {
        sim::Nanos total = cryptoNanos + hiddenCryptoNanos;
        return total > 0 ? double(hiddenCryptoNanos) / double(total)
                         : 0.0;
    }
};

/** One descriptor's worth of work for the engine. */
struct DmaDescriptorWork
{
    uint64_t seq = 0;
    size_t payloadBytes = 0;
    bool read = false;
    /** Seals the descriptor; called once, the ciphertext is cached
     *  verbatim for retransmits. */
    std::function<Bytes()> seal;
    /** Reads only: fetch + verify + decrypt the response once the
     *  descriptor is acked. False = forged response (abort 0xfb). */
    std::function<bool()> complete;
};

/** Environment the engine drives. All transport is *posted* (the
 *  hooks spend no virtual time); the engine itself charges wire time,
 *  window stalls and exposed crypto, which is what makes the
 *  crypto/transport overlap explicit in the phase totals. */
struct DmaWindowHooks
{
    SimHooks sim;
    /** Stages + doorbells one sealed descriptor (fault fabric lives
     *  behind this hook; it must pass the injector a copy, since the
     *  engine retransmits the cached original). */
    std::function<void(uint64_t seq, const Bytes &encoded)> deliver;
    /** MAC-verified cumulative ack readback. False = forged ack. */
    std::function<bool(uint64_t &ackSeq)> readAck;
};

/**
 * Sliding-window transfer engine. Keeps up to `window` sealed
 * descriptors in flight; while descriptor N-1 is on the wire or
 * waiting for its ack, the keystream precompute for descriptor N runs
 * "for free" against an overlap budget accrued from transport time
 * (double buffering: the budget is capped at two descriptors' worth
 * of crypto). Lost, reordered or rejected descriptors are recovered
 * by cumulative-ack-driven retransmission of the identical
 * ciphertext, bounded by `maxAttempts` per descriptor.
 */
class DmaWindowEngine
{
  public:
    struct Options
    {
        size_t window = 8;        ///< clamped to [1, kDmaMaxWindow]
        uint32_t maxAttempts = 8; ///< sends per descriptor before 0xf8
    };

    DmaWindowEngine(DmaWindowHooks hooks, Options opts);

    /** Runs one transfer; `work` must be in ascending seq order. */
    DmaTransferReport run(const std::vector<DmaDescriptorWork> &work);

  private:
    struct InFlight
    {
        uint64_t seq = 0;
        size_t workIndex = 0;
        Bytes encoded;
        sim::Nanos ackDue = 0;
        uint32_t attempts = 1;
    };

    void spendCrypto(sim::Nanos cost, DmaTransferReport &report);
    void spendTransport(sim::Nanos cost, DmaTransferReport &report);

    DmaWindowHooks hooks_;
    Options opts_;
    sim::Nanos overlapBudget_ = 0;
    sim::Nanos overlapCap_ = 0;
};

} // namespace salus::core::dmachan

#endif // SALUS_SALUS_DMA_CHANNEL_HPP
