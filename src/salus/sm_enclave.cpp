#include "salus/sm_enclave.hpp"

#include <algorithm>

#include "bitstream/encryptor.hpp"
#include "bitstream/manipulator.hpp"
#include "common/errors.hpp"
#include "common/log.hpp"
#include "common/serde.hpp"
#include "crypto/aes_gcm.hpp"
#include "crypto/sha256.hpp"
#include "crypto/x25519.hpp"
#include "manufacturer/manufacturer.hpp"
#include "salus/sm_logic.hpp"

namespace salus::core {

namespace {

const char *const kDirUp = "salus-chan-u2s";   // user -> SM
const char *const kDirDown = "salus-chan-s2u"; // SM -> user

} // namespace

tee::EnclaveImage
SmEnclaveApp::defaultImage()
{
    tee::EnclaveImage image;
    image.name = "salus-sm-app";
    image.signer = "salus-hdk-vendor";
    image.isvSvn = 1;
    image.code = bytesFromString(
        "salus secure-manager enclave v1.0: bitstream verification, "
        "manipulation, encryption, CL attestation, register channel");
    return image;
}

tee::Measurement
SmEnclaveApp::defaultMeasurement()
{
    return defaultImage().measure();
}

SmEnclaveApp::SmEnclaveApp(tee::TeePlatform &platform, SmEnclaveDeps deps)
    : tee::Enclave(platform, defaultImage()), deps_(std::move(deps))
{
    // Accept any same-platform initiator; policy pinning happens on
    // the user side (and at the manufacturer for key release).
    la_ = std::make_unique<tee::LocalAttestResponder>(
        *this, tee::Measurement{});
}

Bytes
SmEnclaveApp::laAnswer(ByteView msg1)
{
    auto msg2 = la_->answer(msg1);
    return msg2 ? *msg2 : Bytes();
}

bool
SmEnclaveApp::laConfirm(ByteView msg3)
{
    bool ok = la_->confirm(msg3);
    if (ok) {
        // New LA session => new session key => fresh sequence space.
        channelSeq_ = 0;
    }
    return ok;
}

bool
SmEnclaveApp::laEstablished() const
{
    return la_->established();
}

Bytes
SmEnclaveApp::channelRequest(ByteView sealed)
{
    if (!la_->established())
        return Bytes();

    uint64_t seq = channelSeq_ + 1;
    auto plain = channelOpen(la_->session().key, kDirUp, seq, sealed);
    if (!plain) {
        logf(LogLevel::Warn, "sm-enclave",
             "rejecting channel request (bad seal/seq)");
        return Bytes();
    }
    channelSeq_ = seq;

    Bytes response = handlePlainRequest(*plain);
    return channelSeal(la_->session().key, kDirDown, seq, response);
}

Bytes
SmEnclaveApp::handlePlainRequest(ByteView plain)
{
    BinaryWriter out;
    try {
        BinaryReader r(plain);
        auto type = SmChannelMsg(r.readU8());
        switch (type) {
          case SmChannelMsg::SetMetadata: {
            metadata_ = ClMetadata::deserialize(r.readBytes());
            haveMetadata_ = true;
            out.writeU8(1);
            break;
          }
          case SmChannelMsg::RunSecureBoot: {
            runSecureBoot();
            out.writeRaw(status_.serialize());
            break;
          }
          case SmChannelMsg::SecureRegOp: {
            regchan::RegOp op;
            op.isWrite = r.readU8() != 0;
            op.addr = r.readU32();
            op.data = r.readU64();
            auto [st, data] = secureRegOp(op);
            out.writeU8(st);
            out.writeU64(data);
            break;
          }
          case SmChannelMsg::QueryStatus:
            out.writeRaw(status_.serialize());
            break;
          case SmChannelMsg::RekeySession:
            out.writeU8(rekeySession() ? 1 : 0);
            break;
          default:
            out.writeU8(0xff);
            break;
        }
    } catch (const SalusError &e) {
        logf(LogLevel::Warn, "sm-enclave", "bad channel request: ",
             e.what());
        out.writeU8(0xfe);
    }
    return out.take();
}

void
SmEnclaveApp::runSecureBoot()
{
    status_ = ClBootStatus{};
    if (!haveMetadata_) {
        status_.failure = "no bitstream metadata";
        return;
    }

    int maxAttempts = std::max(1, deps_.retry.maxAttempts);
    for (int attempt = 1; attempt <= maxAttempts; ++attempt) {
        if (attempt > 1) {
            deps_.sim.spend(net::kRetryBackoffPhase,
                            deps_.retry.backoffBefore(attempt));
            logf(LogLevel::Info, "sm-enclave", "secure boot attempt ",
                 attempt, " after: ", status_.failure);
        }
        std::string failure;
        bool retryable = false;
        status_.deployed = false;
        status_.attested = false;
        if (attemptSecureBoot(failure, retryable)) {
            status_.failure.clear();
            return;
        }
        status_.failure = failure;
        if (!retryable)
            return; // security rejection — never retried
    }
}

bool
SmEnclaveApp::attemptSecureBoot(std::string &failure, bool &retryable)
{
    if (!haveDeviceKey_ && !fetchDeviceKey(failure, retryable))
        return false;
    if (!deployCl(failure, retryable))
        return false;
    status_.deployed = true;
    if (!attestCl(failure)) {
        // Transient bus faults and configuration upsets both land
        // here. A forged MAC can never pass by retrying, so a bounded
        // redeploy-and-reattest loop is safe; probe with a scrub pass
        // first in case a correctable SEU is the culprit.
        retryable = true;
        if (!tryScrubRecovery(failure))
            return false;
    }
    status_.attested = true;
    return true;
}

bool
SmEnclaveApp::tryScrubRecovery(std::string &failure)
{
    fpga::FpgaDevice::ScrubReport report;
    try {
        report = deps_.shell->scrubPartition();
    } catch (const SalusError &) {
        return false; // nothing configured to scrub
    }
    if (report.uncorrectable > 0) {
        failure += " (uncorrectable configuration upsets)";
        return false; // partition is down; the boot loop redeploys
    }
    if (report.corrected == 0)
        return false;
    logf(LogLevel::Info, "sm-enclave", "scrub corrected ",
         report.corrected, " upset(s); re-attesting CL");
    return attestCl(failure);
}

bool
SmEnclaveApp::fetchDeviceKey(std::string &failure, bool &retryable)
{
    PhaseScope phase(deps_.sim, phases::kDeviceKeyDist);

    // Ephemeral wrap key; the quote binds its public half so the OS
    // cannot substitute its own.
    crypto::X25519KeyPair eph = crypto::x25519Generate(rng());

    deps_.sim.spend(phases::kDeviceKeyDist,
                    deps_.sim.active() ? deps_.sim.cost->quoteGeneration +
                                             2 * deps_.sim.cost->enclaveTransition
                                       : 0);
    tee::Quote quote = createQuote(eph.publicKey);

    manufacturer::KeyRequest req;
    req.deviceDna = deps_.instanceDeviceDna;
    req.quote = quote.serialize();
    req.wrapPubKey = eph.publicKey;

    net::CallOutcome call = deps_.network->callWithRetry(
        deps_.selfEndpoint, deps_.manufacturerEndpoint, "keyRequest",
        req.serialize(), deps_.retry, phases::kDeviceKeyDist);
    if (!call.ok()) {
        failure = "key request failed: " + call.error;
        retryable = true; // transport-class; a fresh quote may get through
        return false;
    }

    manufacturer::KeyResponse resp;
    try {
        resp = manufacturer::KeyResponse::deserialize(call.response);
    } catch (const SalusError &) {
        failure = "malformed key response";
        retryable = true; // corrupted in flight
        return false;
    }
    if (resp.status != 0) {
        failure = "manufacturer refused key: " + resp.reason;
        // Status 2 means the server could not even parse the request
        // (corrupted in flight); a policy refusal (status 1, e.g. a
        // revoked DNA) is terminal and must not be retried.
        retryable = resp.status == 2;
        return false;
    }

    Bytes wrapKey;
    try {
        wrapKey = crypto::deriveSessionKey(
            eph.privateKey, resp.serverEphPub, "salus-keydist-v1", 32);
    } catch (const CryptoError &) {
        failure = "bad server ephemeral key";
        retryable = true;
        return false;
    }
    crypto::AesGcm gcm(wrapKey);
    auto key = gcm.open(resp.iv, ByteView(), resp.wrappedKey, resp.tag);
    secureZero(wrapKey);
    if (!key || key->size() != 32) {
        // GCM authentication failure: a tampered or garbled wrap. The
        // key itself is never accepted, so re-fetching is safe.
        failure = "device key unwrap failed";
        retryable = true;
        return false;
    }
    deviceKey_ = std::move(*key);
    haveDeviceKey_ = true;
    return true;
}

bool
SmEnclaveApp::deployCl(std::string &failure, bool &retryable)
{
    Bytes file = deps_.fetchBitstream ? deps_.fetchBitstream() : Bytes();
    if (file.empty()) {
        failure = "bitstream not available";
        retryable = true;
        return false;
    }

    // --- Verify against H (step: bitstream verification) -------------
    {
        PhaseScope phase(deps_.sim, phases::kBitstreamVerifEnc);
        if (deps_.sim.active()) {
            deps_.sim.spend(phases::kBitstreamVerifEnc,
                            deps_.sim.cost->bitstreamVerifyEncrypt(
                                file.size()) / 2);
        }
        Bytes digest = crypto::Sha256::digest(file);
        if (digest != metadata_.digestH) {
            failure = "bitstream digest mismatch (tampered or wrong CL)";
            return false;
        }
    }

    // --- Inject fresh secrets (bitstream manipulation) ----------------
    bitstream::LogicLocationFile ll;
    try {
        ll = bitstream::LogicLocationFile::deserialize(
            metadata_.logicLocations);
    } catch (const BitstreamError &) {
        failure = "bad logic-location metadata";
        return false;
    }

    secrets_ = ClSecrets::generate(rng());
    haveSecrets_ = true;
    sessionCtr_ = secrets_.ctrBase;
    try {
        PhaseScope phase(deps_.sim, phases::kBitstreamManip);
        if (deps_.sim.active()) {
            deps_.sim.spend(
                phases::kBitstreamManip,
                deps_.sim.cost->bitstreamManipulation(file.size()));
        }
        bitstream::Manipulator::patchCell(
            file, ll, metadata_.keyAttestPath, secrets_.keyAttest);
        bitstream::Manipulator::patchCell(
            file, ll, metadata_.keySessionPath, secrets_.keySession);
        bitstream::Manipulator::patchCell(
            file, ll, metadata_.ctrSessionPath, secrets_.ctrBytes());
    } catch (const BitstreamError &e) {
        failure = std::string("manipulation failed: ") + e.what();
        return false;
    }

    // --- Encrypt under Key_device -------------------------------------
    Bytes blob;
    {
        PhaseScope phase(deps_.sim, phases::kBitstreamVerifEnc);
        if (deps_.sim.active()) {
            deps_.sim.spend(phases::kBitstreamVerifEnc,
                            deps_.sim.cost->bitstreamVerifyEncrypt(
                                file.size()) / 2);
        }
        bitstream::EncryptedHeader header;
        header.deviceModel = deps_.shell->device().model().name;
        header.partitionId = deps_.shell->partitionId();
        blob = bitstream::encryptBitstream(file, deviceKey_, header,
                                           rng());
        secureZero(file); // plaintext with secrets never leaves
    }

    // --- Hand to the (untrusted) shell for loading --------------------
    {
        PhaseScope phase(deps_.sim, phases::kClDeployment);
        fpga::LoadStatus st = deps_.shell->deployBitstream(blob);
        if (st != fpga::LoadStatus::Ok) {
            failure = std::string("device rejected bitstream: ") +
                      fpga::loadStatusName(st);
            // A failed load (e.g. bad CRC from a bit flipped in
            // flight) leaves the partition cleared; re-encrypting and
            // reloading is always safe, and persistent tampering just
            // exhausts the attempt budget.
            retryable = true;
            return false;
        }
    }
    return true;
}

bool
SmEnclaveApp::attestCl(std::string &failure)
{
    PhaseScope phase(deps_.sim, phases::kClAuth);
    if (deps_.sim.active()) {
        deps_.sim.spend(phases::kClAuth,
                        2 * deps_.sim.cost->smLogicMac +
                            2 * deps_.sim.cost->enclaveTransition +
                            2 * deps_.sim.cost->fpgaDnaReadout);
    }

    uint64_t nonce = rng().nextU64();
    uint64_t dna = deps_.instanceDeviceDna;
    uint64_t macReq =
        regchan::attestRequestMac(secrets_.keyAttest, nonce, dna);

    shell::Shell &sh = *deps_.shell;
    sh.registerWrite(pcie::Window::SmSecure, kSmRegIn0, nonce);
    sh.registerWrite(pcie::Window::SmSecure, kSmRegIn1, macReq);
    sh.registerWrite(pcie::Window::SmSecure, kSmRegCmd, kSmCmdAttest);

    uint64_t status = sh.registerRead(pcie::Window::SmSecure,
                                      kSmRegStatus);
    uint64_t outNonce = sh.registerRead(pcie::Window::SmSecure,
                                        kSmRegOut0);
    uint64_t macRsp = sh.registerRead(pcie::Window::SmSecure,
                                      kSmRegOut1);

    if (status != kSmStatusOk) {
        failure = "CL refused attestation request";
        return false;
    }
    uint64_t expect =
        regchan::attestResponseMac(secrets_.keyAttest, nonce, dna);
    if (outNonce != nonce + 1 || macRsp != expect) {
        failure = "CL attestation MAC mismatch";
        return false;
    }
    return true;
}

Bytes
SmEnclaveApp::exportSealedDeviceKey() const
{
    if (!haveDeviceKey_)
        return Bytes();
    return seal(deviceKey_);
}

bool
SmEnclaveApp::importSealedDeviceKey(ByteView sealedBlob)
{
    auto key = unseal(sealedBlob);
    if (!key || key->size() != 32)
        return false;
    deviceKey_ = std::move(*key);
    haveDeviceKey_ = true;
    return true;
}

bool
SmEnclaveApp::rekeySession()
{
    if (!haveSecrets_ || !status_.ok())
        return false;

    uint64_t ctr = ++sessionCtr_;
    uint64_t nonce = rng().nextU64();
    uint64_t mac =
        regchan::rekeyMac(secrets_.sessionMacKey(), ctr, nonce);

    shell::Shell &sh = *deps_.shell;
    sh.registerWrite(pcie::Window::SmSecure, kSmRegIn0, ctr);
    sh.registerWrite(pcie::Window::SmSecure, kSmRegIn1, nonce);
    sh.registerWrite(pcie::Window::SmSecure, kSmRegIn3, mac);
    sh.registerWrite(pcie::Window::SmSecure, kSmRegCmd, kSmCmdRekey);
    if (sh.registerRead(pcie::Window::SmSecure, kSmRegStatus) !=
        kSmStatusOk) {
        // Either the command never reached the fabric (keys unchanged
        // on both sides) or only the completion was lost (the fabric
        // already rolled). Keep what we need to converge on the
        // rolled keys if the channel starts rejecting us.
        ByteView current = secrets_.sessionMacKey();
        pendingRekeyMacKey_.assign(current.begin(), current.end());
        pendingRekeyNonce_ = nonce;
        havePendingRekey_ = true;
        return false;
    }

    clearPendingRekey();
    auto [aes, macKey] =
        regchan::deriveRekeyedKeys(secrets_.sessionMacKey(), nonce);
    std::copy(aes.begin(), aes.end(), secrets_.keySession.begin());
    std::copy(macKey.begin(), macKey.end(),
              secrets_.keySession.begin() + 16);
    secureZero(aes);
    secureZero(macKey);
    return true;
}

void
SmEnclaveApp::adoptPendingRekey()
{
    auto [aes, macKey] = regchan::deriveRekeyedKeys(pendingRekeyMacKey_,
                                                    pendingRekeyNonce_);
    std::copy(aes.begin(), aes.end(), secrets_.keySession.begin());
    std::copy(macKey.begin(), macKey.end(),
              secrets_.keySession.begin() + 16);
    secureZero(aes);
    secureZero(macKey);
}

void
SmEnclaveApp::clearPendingRekey()
{
    secureZero(pendingRekeyMacKey_);
    pendingRekeyMacKey_.clear();
    pendingRekeyNonce_ = 0;
    havePendingRekey_ = false;
}

bool
SmEnclaveApp::reattestCl()
{
    if (!haveSecrets_)
        return false;
    std::string failure;
    bool ok = attestCl(failure);
    if (!ok) {
        logf(LogLevel::Warn, "sm-enclave",
             "runtime re-attestation failed: ", failure);
        status_.attested = false;
        status_.failure = failure;
    }
    return ok;
}

std::pair<uint8_t, uint64_t>
SmEnclaveApp::secureRegOp(const regchan::RegOp &op)
{
    if (!haveSecrets_ || !status_.ok())
        return {0xfd, 0}; // no attested CL behind the channel

    int maxAttempts = std::max(1, deps_.retry.maxAttempts);
    std::pair<uint8_t, uint64_t> result{0xfc, 0};
    Bytes preAdoptSession;
    bool usingPendingKeys = false;
    for (int attempt = 1; attempt <= maxAttempts; ++attempt) {
        if (attempt > 1) {
            deps_.sim.spend(net::kRetryBackoffPhase,
                            deps_.retry.backoffBefore(attempt));
        }
        result = secureRegOpOnce(op);
        if (result.first != 0xfc && result.first != 0xfb) {
            if (usingPendingKeys)
                clearPendingRekey(); // converged on the rolled keys
            return result;
        }
        // Each retry reseals under a fresh counter, so a lost or
        // garbled transaction cannot be replayed into acceptance. A
        // rejection right after a failed re-key may mean the fabric
        // DID roll its keys and only the completion was lost: try the
        // rolled keys; if the channel still rejects, the roll never
        // happened — revert.
        if (havePendingRekey_ && !usingPendingKeys) {
            preAdoptSession = secrets_.keySession;
            adoptPendingRekey();
            usingPendingKeys = true;
        } else if (usingPendingKeys) {
            secrets_.keySession = preAdoptSession;
            secureZero(preAdoptSession);
            usingPendingKeys = false;
            clearPendingRekey();
        }
    }
    return result;
}

std::pair<uint8_t, uint64_t>
SmEnclaveApp::secureRegOpOnce(const regchan::RegOp &op)
{
    uint64_t ctr = ++sessionCtr_;
    regchan::SealedRegRequest req = regchan::sealRequest(
        secrets_.sessionAesKey(), secrets_.sessionMacKey(), ctr, op);

    shell::Shell &sh = *deps_.shell;
    sh.registerWrite(pcie::Window::SmSecure, kSmRegIn0, req.ctr);
    sh.registerWrite(pcie::Window::SmSecure, kSmRegIn1, req.ct0);
    sh.registerWrite(pcie::Window::SmSecure, kSmRegIn2, req.ct1);
    sh.registerWrite(pcie::Window::SmSecure, kSmRegIn3, req.mac);
    sh.registerWrite(pcie::Window::SmSecure, kSmRegCmd, kSmCmdSecureReg);

    if (sh.registerRead(pcie::Window::SmSecure, kSmRegStatus) !=
        kSmStatusOk) {
        return {0xfc, 0}; // CL rejected (tamper/replay on the bus)
    }
    regchan::SealedRegResponse rsp;
    rsp.ct0 = sh.registerRead(pcie::Window::SmSecure, kSmRegOut0);
    rsp.ct1 = sh.registerRead(pcie::Window::SmSecure, kSmRegOut1);
    rsp.mac = sh.registerRead(pcie::Window::SmSecure, kSmRegOut2);

    auto opened = regchan::openResponse(
        secrets_.sessionAesKey(), secrets_.sessionMacKey(), ctr, rsp);
    if (!opened)
        return {0xfb, 0}; // response forged or corrupted
    return *opened;
}

} // namespace salus::core
