#include "salus/sm_enclave.hpp"

#include <algorithm>
#include <memory>

#include "bitstream/encryptor.hpp"
#include "bitstream/manipulator.hpp"
#include "common/errors.hpp"
#include "common/log.hpp"
#include "common/serde.hpp"
#include "crypto/aes_gcm.hpp"
#include "crypto/sha256.hpp"
#include "crypto/x25519.hpp"
#include "manufacturer/manufacturer.hpp"
#include "obs/trace.hpp"
#include "salus/sm_logic.hpp"

namespace salus::core {

namespace {

const char *const kDirUp = "salus-chan-u2s";   // user -> SM
const char *const kDirDown = "salus-chan-s2u"; // SM -> user

/** Platform monotonic counter backing the journal version. */
const char *const kJournalCounterId = "salus-sm-journal";

/** Session counters handed out between two journal commits. Larger
 *  strides amortise commits; a crash skips at most this many counter
 *  values (the fabric only requires strict increase). */
constexpr uint64_t kCtrReserveStride = 64;

// ---- Secure DMA plane: device-DRAM layout ----------------------------
//
// Descriptors are staged into a ring of DRAM slots indexed by
// seq % kDmaMaxWindow; the doorbell consumes a slot synchronously, so
// slot reuse after kDmaMaxWindow sequence numbers can never clobber an
// unconsumed descriptor. Read responses land in a second ring the host
// drains before the window admits seq + kDmaMaxWindow.

constexpr uint64_t kDmaStagingBase = 0x200000;
constexpr uint64_t kDmaStagingStride = 0x14000;
constexpr uint64_t kDmaRespBase = 0x340000;
constexpr uint64_t kDmaRespStride = 0xc000;
/** Per-descriptor payload caps keeping an encoded write descriptor
 *  inside one staging slot and a sealed read response inside one
 *  response slot. */
constexpr size_t kDmaWriteChunkCap = 64 * 1024;
constexpr size_t kDmaReadChunkCap = 32 * 1024;
static_assert(dmachan::kDmaHeaderBytes +
                      dmachan::kDmaMaxSg * dmachan::kDmaSgEntryBytes +
                      kDmaWriteChunkCap + 8 <=
                  kDmaStagingStride,
              "encoded write descriptor must fit one staging slot");
static_assert(kDmaReadChunkCap + dmachan::kDmaRespOverhead <=
                  kDmaRespStride,
              "sealed read response must fit one response slot");

/** One descriptor's chunk of a transfer: its slice of the flattened
 *  data buffer plus the scatter-gather entries it covers. */
struct DmaChunk
{
    std::vector<dmachan::DmaSgEntry> sg;
    size_t bytes = 0;
    size_t dataOff = 0;
};

/** Splits a scatter-gather list into per-descriptor chunks of at most
 *  `chunkBytes` payload and kDmaMaxSg entries, splitting oversized
 *  entries across descriptors. */
std::vector<DmaChunk>
chunkSgList(const std::vector<dmachan::DmaSgEntry> &sg,
            size_t chunkBytes)
{
    std::vector<DmaChunk> chunks;
    DmaChunk cur;
    size_t off = 0;
    auto flush = [&]() {
        if (!cur.sg.empty())
            chunks.push_back(std::move(cur));
        cur = DmaChunk{};
    };
    for (const dmachan::DmaSgEntry &e : sg) {
        uint64_t addr = e.addr;
        size_t left = e.len;
        while (left > 0) {
            if (cur.sg.size() >= dmachan::kDmaMaxSg ||
                cur.bytes >= chunkBytes)
                flush();
            if (cur.sg.empty())
                cur.dataOff = off;
            size_t take = std::min(left, chunkBytes - cur.bytes);
            cur.sg.push_back({addr, uint32_t(take)});
            cur.bytes += take;
            addr += take;
            left -= take;
            off += take;
        }
    }
    flush();
    return chunks;
}

} // namespace

tee::EnclaveImage
SmEnclaveApp::defaultImage()
{
    tee::EnclaveImage image;
    image.name = "salus-sm-app";
    image.signer = "salus-hdk-vendor";
    image.isvSvn = 1;
    image.code = bytesFromString(
        "salus secure-manager enclave v1.0: bitstream verification, "
        "manipulation, encryption, CL attestation, register channel");
    return image;
}

tee::Measurement
SmEnclaveApp::defaultMeasurement()
{
    return defaultImage().measure();
}

SmEnclaveApp::SmEnclaveApp(tee::TeePlatform &platform, SmEnclaveDeps deps)
    : tee::Enclave(platform, defaultImage()), deps_(std::move(deps))
{
    // Accept any same-platform initiator; policy pinning happens on
    // the user side (and at the manufacturer for key release).
    la_ = std::make_unique<tee::LocalAttestResponder>(
        *this, tee::Measurement{});

    devices_ = deps_.devices;
    if (devices_.empty() && deps_.shell) {
        // Legacy single-device wiring.
        devices_.push_back({deps_.shell, deps_.instanceDeviceDna});
    }
}

shell::Shell &
SmEnclaveApp::activeShell() const
{
    if (activeDevice_ >= devices_.size() ||
        devices_[activeDevice_].shell == nullptr)
        throw SalusError("SM enclave has no active device");
    return *devices_[activeDevice_].shell;
}

uint64_t
SmEnclaveApp::activeDna() const
{
    if (activeDevice_ >= devices_.size())
        return 0;
    return devices_[activeDevice_].dna;
}

Bytes
SmEnclaveApp::laAnswer(ByteView msg1)
{
    auto msg2 = la_->answer(msg1);
    return msg2 ? *msg2 : Bytes();
}

bool
SmEnclaveApp::laConfirm(ByteView msg3)
{
    bool ok = la_->confirm(msg3);
    if (ok) {
        // New LA session => new session key => fresh sequence space.
        channelSeq_ = 0;
    }
    return ok;
}

bool
SmEnclaveApp::laEstablished() const
{
    return la_->established();
}

// ---- Multi-session peers ----------------------------------------------

uint32_t
SmEnclaveApp::createPeer()
{
    if (1 + extraLa_.size() >= kSmMaxSessions)
        throw SalusError("SM enclave: fabric session slots exhausted");
    extraLa_.push_back(std::make_unique<tee::LocalAttestResponder>(
        *this, tee::Measurement{}));
    extraSeq_.push_back(0);
    return uint32_t(extraLa_.size()); // peer id == fabric slot
}

size_t
SmEnclaveApp::peerCount() const
{
    return 1 + extraLa_.size();
}

tee::LocalAttestResponder *
SmEnclaveApp::peerLa(uint32_t peer) const
{
    if (peer == 0)
        return la_.get();
    if (peer - 1 >= extraLa_.size())
        return nullptr;
    return extraLa_[peer - 1].get();
}

Bytes
SmEnclaveApp::laAnswer(uint32_t peer, ByteView msg1)
{
    tee::LocalAttestResponder *la = peerLa(peer);
    if (!la)
        return Bytes();
    auto msg2 = la->answer(msg1);
    return msg2 ? *msg2 : Bytes();
}

bool
SmEnclaveApp::laConfirm(uint32_t peer, ByteView msg3)
{
    tee::LocalAttestResponder *la = peerLa(peer);
    if (!la)
        return false;
    bool ok = la->confirm(msg3);
    if (ok) {
        // New LA session => new session key => fresh sequence space.
        if (peer == 0)
            channelSeq_ = 0;
        else
            extraSeq_[peer - 1] = 0;
    }
    return ok;
}

bool
SmEnclaveApp::laEstablished(uint32_t peer) const
{
    tee::LocalAttestResponder *la = peerLa(peer);
    return la && la->established();
}

Bytes
SmEnclaveApp::channelRequest(ByteView sealed)
{
    return channelRequest(0, sealed);
}

Bytes
SmEnclaveApp::channelRequest(uint32_t peer, ByteView sealed)
{
    if (failClosed_) {
        logf(LogLevel::Warn, "sm-enclave",
             "refusing channel traffic: failed closed after journal "
             "rollback/corruption");
        return Bytes();
    }
    tee::LocalAttestResponder *la = peerLa(peer);
    if (!la || !la->established())
        return Bytes();

    uint64_t &seqRef = peer == 0 ? channelSeq_ : extraSeq_[peer - 1];
    uint64_t seq = seqRef + 1;
    auto plain = channelOpen(la->session().key, kDirUp, seq, sealed);
    if (!plain) {
        logf(LogLevel::Warn, "sm-enclave",
             "rejecting channel request (bad seal/seq)");
        return Bytes();
    }
    seqRef = seq;

    Bytes response = handlePlainRequest(peer, *plain);
    return channelSeal(la->session().key, kDirDown, seq, response);
}

Bytes
SmEnclaveApp::handlePlainRequest(uint32_t peer, ByteView plain)
{
    BinaryWriter out;
    try {
        BinaryReader r(plain);
        auto type = SmChannelMsg(r.readU8());
        switch (type) {
          case SmChannelMsg::SetMetadata: {
            // Only the session owner (peer 0) configures the boot.
            if (peer != 0) {
                out.writeU8(0);
                break;
            }
            metadata_ = ClMetadata::deserialize(r.readBytes());
            haveMetadata_ = true;
            out.writeU8(1);
            break;
          }
          case SmChannelMsg::RunSecureBoot: {
            if (peer != 0) {
                ClBootStatus denied;
                denied.failure = "only the session owner may boot";
                out.writeRaw(denied.serialize());
                break;
            }
            runSecureBoot();
            out.writeRaw(status_.serialize());
            break;
          }
          case SmChannelMsg::SecureRegOp: {
            regchan::RegOp op;
            op.isWrite = r.readU8() != 0;
            op.addr = r.readU32();
            op.data = r.readU64();
            if (peer == 0) {
                auto [st, data] = secureRegOp(op);
                out.writeU8(st);
                out.writeU64(data);
            } else {
                // Tenant peers ride their own fabric session slot.
                auto results = secureRegBatch(peer, {op});
                out.writeU8(results.at(0).status);
                out.writeU64(results.at(0).data);
            }
            break;
          }
          case SmChannelMsg::SecureRegBatch: {
            uint32_t count = r.readU32();
            if (count == 0 || count > 4096)
                throw SerdeError("batch count out of range");
            std::vector<regchan::RegOp> ops;
            ops.reserve(count);
            for (uint32_t i = 0; i < count; ++i) {
                regchan::RegOp op;
                op.isWrite = r.readU8() != 0;
                op.addr = r.readU32();
                op.data = r.readU64();
                ops.push_back(op);
            }
            auto results = secureRegBatch(peer, ops);
            out.writeU32(uint32_t(results.size()));
            for (const regchan::BatchResult &res : results) {
                out.writeU8(res.status);
                out.writeU64(res.data);
            }
            break;
          }
          case SmChannelMsg::QueryStatus:
            out.writeRaw(status_.serialize());
            break;
          case SmChannelMsg::RekeySession:
            out.writeU8(peer == 0 && rekeySession() ? 1 : 0);
            break;
          default:
            out.writeU8(0xff);
            break;
        }
    } catch (const SmCrashError &) {
        // The SM process died mid-request; nothing replies. The
        // crash-recovery tests catch this at the deployment driver.
        throw;
    } catch (const SalusError &e) {
        logf(LogLevel::Warn, "sm-enclave", "bad channel request: ",
             e.what());
        out.writeU8(0xfe);
    }
    return out.take();
}

void
SmEnclaveApp::runSecureBoot()
{
    obs::Span span(obs::Category::Boot, "secure_boot");
    status_ = ClBootStatus{};
    if (failClosed_) {
        status_.failure = "SM enclave failed closed (journal rejected)";
        return;
    }
    if (!haveMetadata_) {
        status_.failure = "no bitstream metadata";
        return;
    }

    int maxAttempts = std::max(1, deps_.retry.maxAttempts);
    for (int attempt = 1; attempt <= maxAttempts; ++attempt) {
        if (attempt > 1) {
            deps_.sim.spend(net::kRetryBackoffPhase,
                            deps_.retry.backoffBefore(attempt));
            logf(LogLevel::Info, "sm-enclave", "secure boot attempt ",
                 attempt, " after: ", status_.failure);
        }
        obs::Span attemptSpan(obs::Category::Boot, "boot_attempt",
                              uint64_t(attempt));
        obs::count("boot.attempts");
        std::string failure;
        bool retryable = false;
        status_.deployed = false;
        status_.attested = false;
        if (attemptSecureBoot(failure, retryable)) {
            status_.failure.clear();
            return;
        }
        obs::count("boot.attempt_failures");
        status_.failure = failure;
        if (!retryable)
            return; // security rejection — never retried
    }
    // Bounded schedule exhausted by transport-class failures: surface
    // the device to the fleet supervisor instead of hammering on.
    if (deps_.onDeviceFailure) {
        ErrorContext ctx;
        ctx.from = deps_.selfEndpoint;
        ctx.to = "device-" + std::to_string(activeDevice_);
        ctx.method = "secureBoot";
        ctx.attempt = maxAttempts;
        deps_.onDeviceFailure(activeDevice_, ctx);
    }
}

bool
SmEnclaveApp::attemptSecureBoot(std::string &failure, bool &retryable)
{
    if (!haveDeviceKey() && !fetchDeviceKey(failure, retryable))
        return false;
    if (!deployCl(failure, retryable))
        return false;
    status_.deployed = true;
    if (!attestCl(failure)) {
        // Transient bus faults and configuration upsets both land
        // here. A forged MAC can never pass by retrying, so a bounded
        // redeploy-and-reattest loop is safe; probe with a scrub pass
        // first in case a correctable SEU is the culprit.
        retryable = true;
        if (!tryScrubRecovery(failure))
            return false;
    }
    status_.attested = true;
    // Deployment complete: reserve a counter window and persist the
    // deployment table so a crashed SM can resume this session.
    ctrReserve_ = sessionCtr_ + kCtrReserveStride;
    commitJournal();
    return true;
}

bool
SmEnclaveApp::tryScrubRecovery(std::string &failure)
{
    fpga::FpgaDevice::ScrubReport report;
    try {
        report = activeShell().scrubPartition();
    } catch (const SalusError &) {
        return false; // nothing configured to scrub
    }
    if (report.uncorrectable > 0) {
        failure += " (uncorrectable configuration upsets)";
        return false; // partition is down; the boot loop redeploys
    }
    if (report.corrected == 0)
        return false;
    logf(LogLevel::Info, "sm-enclave", "scrub corrected ",
         report.corrected, " upset(s); re-attesting CL");
    return attestCl(failure);
}

bool
SmEnclaveApp::fetchDeviceKey(std::string &failure, bool &retryable)
{
    obs::Span span(obs::Category::Boot, "device_key_dist");
    PhaseScope phase(deps_.sim, phases::kDeviceKeyDist);

    // Ephemeral wrap key; the quote binds its public half so the OS
    // cannot substitute its own.
    crypto::X25519KeyPair eph = crypto::x25519Generate(rng());

    deps_.sim.spend(phases::kDeviceKeyDist,
                    deps_.sim.active() ? deps_.sim.cost->quoteGeneration +
                                             2 * deps_.sim.cost->enclaveTransition
                                       : 0);
    tee::Quote quote = createQuote(eph.publicKey);

    manufacturer::KeyRequest req;
    req.deviceDna = activeDna();
    req.quote = quote.serialize();
    req.wrapPubKey = eph.publicKey;

    net::CallOutcome call = deps_.network->callWithRetry(
        deps_.selfEndpoint, deps_.manufacturerEndpoint, "keyRequest",
        req.serialize(), deps_.retry, phases::kDeviceKeyDist);
    if (!call.ok()) {
        failure = "key request failed: " + call.error;
        retryable = true; // transport-class; a fresh quote may get through
        return false;
    }

    manufacturer::KeyResponse resp;
    try {
        resp = manufacturer::KeyResponse::deserialize(call.response);
    } catch (const SalusError &) {
        failure = "malformed key response";
        retryable = true; // corrupted in flight
        return false;
    }
    if (resp.status != 0) {
        failure = "manufacturer refused key: " + resp.reason;
        // Status 2 means the server could not even parse the request
        // (corrupted in flight); a policy refusal (status 1, e.g. a
        // revoked DNA) is terminal and must not be retried.
        retryable = resp.status == 2;
        return false;
    }

    Bytes wrapKey;
    try {
        wrapKey = crypto::deriveSessionKey(
            eph.privateKey, resp.serverEphPub, "salus-keydist-v1", 32);
    } catch (const CryptoError &) {
        failure = "bad server ephemeral key";
        retryable = true;
        return false;
    }
    crypto::AesGcm gcm(wrapKey);
    auto key = gcm.open(resp.iv, ByteView(), resp.wrappedKey, resp.tag);
    secureZero(wrapKey);
    if (!key || key->size() != 32) {
        // GCM authentication failure: a tampered or garbled wrap. The
        // key itself is never accepted, so re-fetching is safe.
        failure = "device key unwrap failed";
        retryable = true;
        return false;
    }
    deviceKeys_[activeDna()] = std::move(*key);
    // Key_device fetched: persist so a crashed SM skips the round trip.
    commitJournal();
    return true;
}

bool
SmEnclaveApp::deployCl(std::string &failure, bool &retryable)
{
    obs::Span span(obs::Category::Bitstream, "deploy_cl");
    Bytes file = deps_.fetchBitstream ? deps_.fetchBitstream() : Bytes();
    if (file.empty()) {
        failure = "bitstream not available";
        retryable = true;
        return false;
    }

    // --- Verify against H (step: bitstream verification) -------------
    {
        obs::Span sub(obs::Category::Bitstream, "verify",
                      uint64_t(file.size()));
        PhaseScope phase(deps_.sim, phases::kBitstreamVerifEnc);
        if (deps_.sim.active()) {
            deps_.sim.spend(phases::kBitstreamVerifEnc,
                            deps_.sim.cost->bitstreamVerifyEncrypt(
                                file.size()) / 2);
        }
        Bytes digest = crypto::Sha256::digest(file);
        if (digest != metadata_.digestH) {
            failure = "bitstream digest mismatch (tampered or wrong CL)";
            return false;
        }
    }

    // --- Inject fresh secrets (bitstream manipulation) ----------------
    bitstream::LogicLocationFile ll;
    try {
        ll = bitstream::LogicLocationFile::deserialize(
            metadata_.logicLocations);
    } catch (const BitstreamError &) {
        failure = "bad logic-location metadata";
        return false;
    }

    // Any prior secret set (earlier attempt, earlier device) is
    // retired before new material exists; the freshness check below
    // then guarantees no retired bytes ever serve again.
    retireCurrentSecrets();
    secrets_ = ClSecrets::generate(rng());
    haveSecrets_ = true;
    if (retiredFingerprints_.count(secretsFingerprint())) {
        // Astronomically improbable with an honest RNG; a hit means
        // key material from a dead device is about to be reused.
        retireCurrentSecrets();
        failure = "freshly generated secrets match a retired set";
        retryable = false;
        return false;
    }
    sessionCtr_ = secrets_.ctrBase;
    try {
        obs::Span sub(obs::Category::Bitstream, "inject_secrets");
        PhaseScope phase(deps_.sim, phases::kBitstreamManip);
        if (deps_.sim.active()) {
            deps_.sim.spend(
                phases::kBitstreamManip,
                deps_.sim.cost->bitstreamManipulation(file.size()));
        }
        bitstream::Manipulator::patchCell(
            file, ll, metadata_.keyAttestPath, secrets_.keyAttest);
        bitstream::Manipulator::patchCell(
            file, ll, metadata_.keySessionPath, secrets_.keySession);
        bitstream::Manipulator::patchCell(
            file, ll, metadata_.ctrSessionPath, secrets_.ctrBytes());
    } catch (const BitstreamError &e) {
        failure = std::string("manipulation failed: ") + e.what();
        return false;
    }

    // --- Encrypt under Key_device -------------------------------------
    Bytes blob;
    {
        obs::Span sub(obs::Category::Bitstream, "encrypt");
        PhaseScope phase(deps_.sim, phases::kBitstreamVerifEnc);
        if (deps_.sim.active()) {
            deps_.sim.spend(phases::kBitstreamVerifEnc,
                            deps_.sim.cost->bitstreamVerifyEncrypt(
                                file.size()) / 2);
        }
        bitstream::EncryptedHeader header;
        header.deviceModel = activeShell().device().model().name;
        header.partitionId = activeShell().partitionId();
        blob = bitstream::encryptBitstream(
            file, deviceKeys_.at(activeDna()), header, rng());
        secureZero(file); // plaintext with secrets never leaves
    }

    // --- Hand to the (untrusted) shell for loading --------------------
    {
        obs::Span sub(obs::Category::Bitstream, "load",
                      uint64_t(blob.size()));
        PhaseScope phase(deps_.sim, phases::kClDeployment);
        fpga::LoadStatus st = activeShell().deployBitstream(blob);
        if (st != fpga::LoadStatus::Ok) {
            failure = std::string("device rejected bitstream: ") +
                      fpga::loadStatusName(st);
            // A failed load (e.g. bad CRC from a bit flipped in
            // flight) leaves the partition cleared; re-encrypting and
            // reloading is always safe, and persistent tampering just
            // exhausts the attempt budget.
            retryable = true;
            return false;
        }
    }
    return true;
}

bool
SmEnclaveApp::attestCl(std::string &failure)
{
    obs::Span span(obs::Category::Attestation, "attest_cl");
    obs::count("attestation.cl_attempts");
    PhaseScope phase(deps_.sim, phases::kClAuth);
    if (deps_.sim.active()) {
        deps_.sim.spend(phases::kClAuth,
                        2 * deps_.sim.cost->smLogicMac +
                            2 * deps_.sim.cost->enclaveTransition +
                            2 * deps_.sim.cost->fpgaDnaReadout);
    }

    uint64_t nonce = rng().nextU64();
    uint64_t dna = activeDna();
    uint64_t macReq =
        regchan::attestRequestMac(secrets_.keyAttest, nonce, dna);

    shell::Shell &sh = activeShell();
    sh.registerWrite(pcie::Window::SmSecure, kSmRegIn0, nonce);
    sh.registerWrite(pcie::Window::SmSecure, kSmRegIn1, macReq);
    sh.registerWrite(pcie::Window::SmSecure, kSmRegCmd, kSmCmdAttest);

    uint64_t status = sh.registerRead(pcie::Window::SmSecure,
                                      kSmRegStatus);
    uint64_t outNonce = sh.registerRead(pcie::Window::SmSecure,
                                        kSmRegOut0);
    uint64_t macRsp = sh.registerRead(pcie::Window::SmSecure,
                                      kSmRegOut1);

    if (status != kSmStatusOk) {
        failure = "CL refused attestation request";
        return false;
    }
    uint64_t expect =
        regchan::attestResponseMac(secrets_.keyAttest, nonce, dna);
    if (outNonce != nonce + 1 || macRsp != expect) {
        failure = "CL attestation MAC mismatch";
        return false;
    }
    return true;
}

Bytes
SmEnclaveApp::exportSealedDeviceKey() const
{
    auto it = deviceKeys_.find(activeDna());
    if (it == deviceKeys_.end())
        return Bytes();
    return seal(it->second);
}

bool
SmEnclaveApp::importSealedDeviceKey(ByteView sealedBlob)
{
    auto key = unseal(sealedBlob);
    if (!key || key->size() != 32)
        return false;
    deviceKeys_[activeDna()] = std::move(*key);
    return true;
}

bool
SmEnclaveApp::rekeySession()
{
    if (!haveSecrets_ || !status_.ok())
        return false;
    obs::Span span(obs::Category::Channel, "rekey_session");
    obs::count("channel.rekeys");

    uint64_t ctr = nextSessionCtr();
    uint64_t nonce = rng().nextU64();
    uint64_t mac =
        regchan::rekeyMac(secrets_.sessionMacKey(), ctr, nonce);

    shell::Shell &sh = activeShell();
    sh.registerWrite(pcie::Window::SmSecure, kSmRegIn0, ctr);
    sh.registerWrite(pcie::Window::SmSecure, kSmRegIn1, nonce);
    sh.registerWrite(pcie::Window::SmSecure, kSmRegIn3, mac);
    sh.registerWrite(pcie::Window::SmSecure, kSmRegCmd, kSmCmdRekey);
    if (sh.registerRead(pcie::Window::SmSecure, kSmRegStatus) !=
        kSmStatusOk) {
        // Either the command never reached the fabric (keys unchanged
        // on both sides) or only the completion was lost (the fabric
        // already rolled). Keep what we need to converge on the
        // rolled keys if the channel starts rejecting us.
        ByteView current = secrets_.sessionMacKey();
        pendingRekeyMacKey_.assign(current.begin(), current.end());
        pendingRekeyNonce_ = nonce;
        havePendingRekey_ = true;
        return false;
    }

    clearPendingRekey();
    auto [aes, macKey] =
        regchan::deriveRekeyedKeys(secrets_.sessionMacKey(), nonce);
    std::copy(aes.begin(), aes.end(), secrets_.keySession.begin());
    std::copy(macKey.begin(), macKey.end(),
              secrets_.keySession.begin() + 16);
    secureZero(aes);
    secureZero(macKey);
    // Rolled keys are part of the session metadata — persist them, or
    // a recovered SM would hold the pre-roll keys the fabric rejects.
    commitJournal();
    return true;
}

void
SmEnclaveApp::adoptPendingRekey()
{
    auto [aes, macKey] = regchan::deriveRekeyedKeys(pendingRekeyMacKey_,
                                                    pendingRekeyNonce_);
    std::copy(aes.begin(), aes.end(), secrets_.keySession.begin());
    std::copy(macKey.begin(), macKey.end(),
              secrets_.keySession.begin() + 16);
    secureZero(aes);
    secureZero(macKey);
}

void
SmEnclaveApp::clearPendingRekey()
{
    secureZero(pendingRekeyMacKey_);
    pendingRekeyMacKey_.clear();
    pendingRekeyNonce_ = 0;
    havePendingRekey_ = false;
}

bool
SmEnclaveApp::reattestCl()
{
    if (!haveSecrets_)
        return false;
    std::string failure;
    bool ok = attestCl(failure);
    if (!ok) {
        logf(LogLevel::Warn, "sm-enclave",
             "runtime re-attestation failed: ", failure);
        status_.attested = false;
        status_.failure = failure;
    }
    return ok;
}

std::pair<uint8_t, uint64_t>
SmEnclaveApp::secureRegOp(const regchan::RegOp &op)
{
    obs::Span span(obs::Category::Channel, "reg_op");
    obs::count("channel.single_ops");
    if (!haveSecrets_ || !status_.ok())
        return {0xfd, 0}; // no attested CL behind the channel

    int maxAttempts = std::max(1, deps_.retry.maxAttempts);
    std::pair<uint8_t, uint64_t> result{0xfc, 0};
    Bytes preAdoptSession;
    bool usingPendingKeys = false;
    for (int attempt = 1; attempt <= maxAttempts; ++attempt) {
        if (attempt > 1) {
            deps_.sim.spend(net::kRetryBackoffPhase,
                            deps_.retry.backoffBefore(attempt));
        }
        result = secureRegOpOnce(op);
        if (result.first != 0xfc && result.first != 0xfb) {
            if (usingPendingKeys)
                clearPendingRekey(); // converged on the rolled keys
            return result;
        }
        // Each retry reseals under a fresh counter, so a lost or
        // garbled transaction cannot be replayed into acceptance. A
        // rejection right after a failed re-key may mean the fabric
        // DID roll its keys and only the completion was lost: try the
        // rolled keys; if the channel still rejects, the roll never
        // happened — revert.
        if (havePendingRekey_ && !usingPendingKeys) {
            preAdoptSession = secrets_.keySession;
            adoptPendingRekey();
            usingPendingKeys = true;
        } else if (usingPendingKeys) {
            secrets_.keySession = preAdoptSession;
            secureZero(preAdoptSession);
            usingPendingKeys = false;
            clearPendingRekey();
        }
    }
    // Every sealed attempt was lost or rejected — the device is not
    // serving the channel. Tell the supervisor; it owns the decision
    // to quarantine and fail the session over.
    if (deps_.onDeviceFailure) {
        ErrorContext ctx;
        ctx.from = deps_.selfEndpoint;
        ctx.to = "device-" + std::to_string(activeDevice_);
        ctx.method = "secureRegOp";
        ctx.attempt = maxAttempts;
        deps_.onDeviceFailure(activeDevice_, ctx);
    }
    return result;
}

const crypto::Aes &
SmEnclaveApp::slotAes(uint32_t slot, ByteView aesKey)
{
    SlotAesCache &c = slotAesCache_[slot];
    if (!c.aes || c.key.size() != aesKey.size() ||
        !std::equal(c.key.begin(), c.key.end(), aesKey.begin())) {
        secureZero(c.key);
        c.key.assign(aesKey.begin(), aesKey.end());
        c.aes = std::make_unique<crypto::Aes>(aesKey);
    }
    return *c.aes;
}

std::pair<uint8_t, uint64_t>
SmEnclaveApp::secureRegOpOnce(const regchan::RegOp &op)
{
    uint64_t ctr = nextSessionCtr();
    const crypto::Aes &aes = slotAes(0, secrets_.sessionAesKey());
    regchan::SealedRegRequest req;
    {
        obs::Span crypto(obs::Category::Channel, "op_crypto");
        req = regchan::sealRequest(aes, secrets_.sessionMacKey(), ctr,
                                   op);
    }

    shell::Shell &sh = activeShell();
    regchan::SealedRegResponse rsp;
    {
        obs::Span transport(obs::Category::Channel, "op_transport");
        sh.registerWrite(pcie::Window::SmSecure, kSmRegIn0, req.ctr);
        sh.registerWrite(pcie::Window::SmSecure, kSmRegIn1, req.ct0);
        sh.registerWrite(pcie::Window::SmSecure, kSmRegIn2, req.ct1);
        sh.registerWrite(pcie::Window::SmSecure, kSmRegIn3, req.mac);
        sh.registerWrite(pcie::Window::SmSecure, kSmRegCmd,
                         kSmCmdSecureReg);

        if (sh.registerRead(pcie::Window::SmSecure, kSmRegStatus) !=
            kSmStatusOk) {
            obs::count("channel.rejects");
            return {0xfc, 0}; // CL rejected (tamper/replay on the bus)
        }
        rsp.ct0 = sh.registerRead(pcie::Window::SmSecure, kSmRegOut0);
        rsp.ct1 = sh.registerRead(pcie::Window::SmSecure, kSmRegOut1);
        rsp.mac = sh.registerRead(pcie::Window::SmSecure, kSmRegOut2);
    }

    obs::Span crypto(obs::Category::Channel, "op_crypto");
    auto opened =
        regchan::openResponse(aes, secrets_.sessionMacKey(), ctr, rsp);
    if (!opened) {
        obs::count("channel.rejects");
        return {0xfb, 0}; // response forged or corrupted
    }
    return *opened;
}

// ---- Batched channel + multi-session fan-out --------------------------

bool
SmEnclaveApp::ensureFabricSession(uint32_t slot)
{
    if (slot == 0)
        return true; // the injected base session always exists
    if (slot >= kSmMaxSessions)
        return false;
    if (extraSessions_.count(slot))
        return true;
    if (!haveSecrets_ || !status_.ok())
        return false;
    obs::Span span(obs::Category::Channel, "open_session",
                   uint64_t(slot));
    obs::count("channel.session_opens");

    // The open nonce rides the same monotone counter stream as the
    // base channel, so it strictly increases across re-opens (the
    // fabric refuses stale opens) and is covered by the journal's
    // write-ahead reservation.
    uint64_t nonce = nextSessionCtr();
    uint64_t mac = regchan::sessionOpenMac(secrets_.sessionMacKey(),
                                           slot, nonce);

    shell::Shell &sh = activeShell();
    PhaseScope transport(deps_.sim, phases::kChanTransport);
    sh.registerWrite(pcie::Window::SmSecure, kSmRegIn0, slot);
    sh.registerWrite(pcie::Window::SmSecure, kSmRegIn1, nonce);
    sh.registerWrite(pcie::Window::SmSecure, kSmRegIn3, mac);
    sh.registerWrite(pcie::Window::SmSecure, kSmRegCmd,
                     kSmCmdOpenSession);
    if (sh.registerRead(pcie::Window::SmSecure, kSmRegStatus) !=
        kSmStatusOk)
        return false;

    FabricSession s;
    s.keySession =
        regchan::deriveSlotSessionKeys(secrets_.keySession, slot, nonce);
    s.openNonce = nonce;
    extraSessions_[slot] = std::move(s);
    // Persist: a recovered SM must hold the slot keys the fabric holds.
    commitJournal();
    return true;
}

uint64_t
SmEnclaveApp::reserveCtrSpan(uint32_t slot, uint64_t n)
{
    if (slot == 0) {
        uint64_t base = sessionCtr_ + 1;
        if (sessionCtr_ + n > ctrReserve_ && deps_.storeJournal) {
            ctrReserve_ = sessionCtr_ + n + kCtrReserveStride;
            commitJournal();
        }
        sessionCtr_ += n;
        return base;
    }
    FabricSession &s = extraSessions_.at(slot);
    uint64_t base = s.ctr + 1;
    if (s.ctr + n > s.reserve && deps_.storeJournal) {
        s.reserve = s.ctr + n + kCtrReserveStride;
        commitJournal();
    }
    s.ctr += n;
    return base;
}

std::vector<regchan::BatchResult>
SmEnclaveApp::secureRegBatch(uint32_t slot,
                             const std::vector<regchan::RegOp> &ops)
{
    std::vector<regchan::BatchResult> results;
    results.reserve(ops.size());
    if (ops.empty())
        return results;
    obs::Span span(obs::Category::Channel, "reg_batch",
                   uint64_t(ops.size()));
    obs::count("channel.batch_ops", ops.size());
    obs::observe("channel.batch_size", ops.size());
    if (!haveSecrets_ || !status_.ok() || slot >= kSmMaxSessions) {
        results.assign(ops.size(), regchan::BatchResult{0xfd, 0});
        return results;
    }

    int maxAttempts = std::max(1, deps_.retry.maxAttempts);
    size_t at = 0;
    while (at < ops.size()) {
        size_t n = std::min(ops.size() - at, regchan::kMaxBatchOps);
        std::vector<regchan::RegOp> chunk(ops.begin() + long(at),
                                          ops.begin() + long(at + n));
        std::vector<regchan::BatchResult> chunkResults;
        uint8_t code = 0xfc;
        Bytes preAdoptSession;
        bool usingPendingKeys = false;
        for (int attempt = 1; attempt <= maxAttempts; ++attempt) {
            if (attempt > 1) {
                deps_.sim.spend(net::kRetryBackoffPhase,
                                deps_.retry.backoffBefore(attempt));
            }
            // Every attempt reseals under a fresh counter stride, so a
            // lost or garbled burst can never replay into acceptance.
            if (slot != 0 && !ensureFabricSession(slot)) {
                code = 0xfc;
            } else {
                uint64_t ctrBase = reserveCtrSpan(slot, n);
                code = secureRegBatchOnce(slot, ctrBase, chunk,
                                          chunkResults);
            }
            if (code == 0)
                break;
            // Same pending-rekey convergence dance as the single-op
            // path; only the base session ever re-keys.
            if (slot == 0) {
                if (havePendingRekey_ && !usingPendingKeys) {
                    preAdoptSession = secrets_.keySession;
                    adoptPendingRekey();
                    usingPendingKeys = true;
                } else if (usingPendingKeys) {
                    secrets_.keySession = preAdoptSession;
                    secureZero(preAdoptSession);
                    usingPendingKeys = false;
                    clearPendingRekey();
                }
            }
        }
        if (code != 0) {
            // Every sealed attempt was lost or rejected: surface the
            // device to the supervisor and fail the remaining ops with
            // the channel-level status.
            if (deps_.onDeviceFailure) {
                ErrorContext ctx;
                ctx.from = deps_.selfEndpoint;
                ctx.to = "device-" + std::to_string(activeDevice_);
                ctx.method = "secureRegBatch";
                ctx.attempt = maxAttempts;
                deps_.onDeviceFailure(activeDevice_, ctx);
            }
            while (results.size() < ops.size())
                results.push_back(regchan::BatchResult{code, 0});
            return results;
        }
        if (usingPendingKeys)
            clearPendingRekey(); // converged on the rolled keys
        results.insert(results.end(), chunkResults.begin(),
                       chunkResults.end());
        at += n;
    }
    return results;
}

uint8_t
SmEnclaveApp::secureRegBatchOnce(uint32_t slot, uint64_t ctrBase,
                                 const std::vector<regchan::RegOp> &ops,
                                 std::vector<regchan::BatchResult> &out)
{
    ByteView aesKey;
    ByteView macKey;
    if (slot == 0) {
        aesKey = secrets_.sessionAesKey();
        macKey = secrets_.sessionMacKey();
    } else {
        const FabricSession &s = extraSessions_.at(slot);
        aesKey = ByteView(s.keySession).subspan(0, 16);
        macKey = ByteView(s.keySession).subspan(16, 32);
    }
    const crypto::Aes &aes = slotAes(slot, aesKey);

    // Host-side crypto (seal + open) is one AES block per op each way
    // plus a single MAC pass per direction — the cost batching
    // amortizes the round trips against.
    regchan::SealedRegBatch batch;
    {
        obs::Span crypto(obs::Category::Channel, "batch_crypto",
                         uint64_t(ops.size()));
        if (deps_.sim.active()) {
            deps_.sim.spend(phases::kChanCrypto,
                            deps_.sim.cost->batchCrypto(ops.size()));
        }
        batch = regchan::sealBatch(aes, macKey, slot, ctrBase, ops);
    }

    size_t nWords = batch.payload.size() / 8;
    std::vector<uint64_t> words(nWords);
    for (size_t i = 0; i < nWords; ++i)
        words[i] = loadLe64(batch.payload.data() + i * 8);

    shell::Shell &sh = activeShell();
    uint64_t status = 0;
    uint64_t rspMac = 0;
    std::vector<uint64_t> rspWords(nWords, 0);
    {
        obs::Span transport(obs::Category::Channel, "batch_transport",
                            uint64_t(ops.size()));
        PhaseScope transport_(deps_.sim, phases::kChanTransport);
        sh.registerWrite(pcie::Window::SmSecure, kSmRegBurstReset, 1);
        sh.registerBurstWrite(pcie::Window::SmSecure, kSmRegBurstIn,
                              words.data(), words.size());
        sh.registerWrite(pcie::Window::SmSecure, kSmRegIn0, ctrBase);
        sh.registerWrite(pcie::Window::SmSecure, kSmRegIn1, ops.size());
        sh.registerWrite(pcie::Window::SmSecure, kSmRegIn2, slot);
        sh.registerWrite(pcie::Window::SmSecure, kSmRegIn3, batch.mac);
        sh.registerWrite(pcie::Window::SmSecure, kSmRegCmd,
                         kSmCmdSecureBatch);
        status = sh.registerRead(pcie::Window::SmSecure, kSmRegStatus);
        if (status == kSmStatusOk) {
            rspMac =
                sh.registerRead(pcie::Window::SmSecure, kSmRegOut2);
            sh.registerBurstRead(pcie::Window::SmSecure, kSmRegBurstOut,
                                 rspWords.data(), rspWords.size());
        }
    }
    if (status != kSmStatusOk) {
        obs::count("channel.rejects");
        return 0xfc; // CL rejected (tamper/replay/loss on the bus)
    }

    regchan::SealedBatchResponse rsp;
    rsp.payload.resize(nWords * 8);
    for (size_t i = 0; i < nWords; ++i)
        storeLe64(rsp.payload.data() + i * 8, rspWords[i]);
    rsp.mac = rspMac;

    obs::Span crypto(obs::Category::Channel, "batch_crypto",
                     uint64_t(ops.size()));
    auto opened = regchan::openBatchResponse(aes, macKey, slot, ctrBase,
                                             ops.size(), rsp);
    if (!opened) {
        obs::count("channel.rejects");
        return 0xfb; // response forged or corrupted
    }
    out = std::move(*opened);
    return 0;
}

// ---- Bulk data plane (sealed DMA descriptors) ------------------------

uint64_t
SmEnclaveApp::reserveDmaSeqSpan(uint32_t slot, uint64_t n)
{
    if (slot == 0) {
        uint64_t base = dmaSeq_;
        if (dmaSeq_ + n > dmaSeqReserve_ && deps_.storeJournal) {
            // Write-ahead, same contract as nextSessionCtr(): the
            // journal's bound always covers every sequence number the
            // fabric may have seen, so recovery resumes past it and a
            // seq (and with it a keystream stride) is never re-issued.
            dmaSeqReserve_ = dmaSeq_ + n + kCtrReserveStride;
            commitJournal();
        }
        dmaSeq_ += n;
        return base;
    }
    FabricSession &s = extraSessions_.at(slot);
    uint64_t base = s.dmaSeq;
    if (s.dmaSeq + n > s.dmaSeqReserve && deps_.storeJournal) {
        s.dmaSeqReserve = s.dmaSeq + n + kCtrReserveStride;
        commitJournal();
    }
    s.dmaSeq += n;
    return base;
}

dmachan::DmaTransferReport
SmEnclaveApp::dmaWrite(uint32_t slot, uint64_t addr, ByteView data,
                       const DmaOptions &opts)
{
    std::vector<dmachan::DmaSgEntry> sg;
    if (!data.empty())
        sg.push_back({addr, uint32_t(data.size())});
    return dmaTransfer(slot, false, sg, data, nullptr, opts);
}

dmachan::DmaTransferReport
SmEnclaveApp::dmaWriteSg(uint32_t slot,
                         const std::vector<dmachan::DmaSgEntry> &sg,
                         ByteView data, const DmaOptions &opts)
{
    return dmaTransfer(slot, false, sg, data, nullptr, opts);
}

dmachan::DmaTransferReport
SmEnclaveApp::dmaRead(uint32_t slot, uint64_t addr, size_t len,
                      Bytes &out, const DmaOptions &opts)
{
    std::vector<dmachan::DmaSgEntry> sg;
    if (len > 0)
        sg.push_back({addr, uint32_t(len)});
    return dmaTransfer(slot, true, sg, ByteView(), &out, opts);
}

dmachan::DmaTransferReport
SmEnclaveApp::dmaTransfer(uint32_t slot, bool read,
                          const std::vector<dmachan::DmaSgEntry> &sg,
                          ByteView data, Bytes *out,
                          const DmaOptions &opts)
{
    dmachan::DmaTransferReport report;
    size_t total = 0;
    for (const dmachan::DmaSgEntry &e : sg)
        total += e.len;
    if (total == 0)
        return report; // empty transfer, trivially ok
    if (!read && data.size() != total) {
        report.status = 0xfd;
        return report;
    }
    if (!haveSecrets_ || !status_.ok() || slot >= kSmMaxSessions ||
        (slot != 0 && !ensureFabricSession(slot))) {
        report.status = 0xfd; // no attested CL behind the channel
        return report;
    }

    ByteView aesKey;
    ByteView macKey;
    if (slot == 0) {
        aesKey = secrets_.sessionAesKey();
        macKey = secrets_.sessionMacKey();
    } else {
        const FabricSession &s = extraSessions_.at(slot);
        aesKey = ByteView(s.keySession).subspan(0, 16);
        macKey = ByteView(s.keySession).subspan(16, 32);
    }
    // Sealing lambdas share the slot's cached schedule; the cache map
    // entry outlives the window engine's run() below.
    const crypto::Aes *aesCtx = &slotAes(slot, aesKey);

    size_t chunkBytes =
        std::clamp<size_t>(opts.descriptorBytes, dmachan::kDmaBlock,
                           read ? kDmaReadChunkCap : kDmaWriteChunkCap);
    std::vector<DmaChunk> chunks = chunkSgList(sg, chunkBytes);
    uint64_t seqBase = reserveDmaSeqSpan(slot, chunks.size());
    if (out)
        out->assign(total, 0);

    shell::Shell &sh = activeShell();
    std::vector<dmachan::DmaDescriptorWork> work;
    work.reserve(chunks.size());
    for (size_t i = 0; i < chunks.size(); ++i) {
        const DmaChunk &c = chunks[i];
        uint64_t seq = seqBase + i;
        uint64_t ctrBase = seq * dmachan::kDmaCtrStride;
        uint64_t respAddr =
            kDmaRespBase +
            (seq % dmachan::kDmaMaxWindow) * kDmaRespStride;
        bool sync = i == 0; // re-synchronises the fabric's window
        dmachan::DmaDescriptorWork w;
        w.seq = seq;
        w.payloadBytes = c.bytes;
        w.read = read;
        w.seal = [aesCtx, macKey, slot, read, sync, seq, ctrBase,
                  respAddr, &c, data]() -> Bytes {
            dmachan::DmaDescriptor d;
            d.read = read;
            d.sync = sync;
            d.sessionId = slot;
            d.seq = seq;
            d.ctrBase = ctrBase;
            d.respAddr = read ? respAddr : 0;
            d.sg = c.sg;
            if (!read) {
                d.payload.assign(data.begin() + long(c.dataOff),
                                 data.begin() +
                                     long(c.dataOff + c.bytes));
                dmachan::cryptDmaPayload(*aesCtx, false, ctrBase,
                                         d.payload.data(),
                                         d.payload.size());
            }
            Bytes encoded = dmachan::encodeDescriptor(macKey, d);
            secureZero(d.payload);
            return encoded;
        };
        if (read) {
            size_t bytes = c.bytes;
            size_t dataOff = c.dataOff;
            w.complete = [aesCtx, macKey, slot, seq, ctrBase, respAddr,
                          bytes, dataOff, out, &sh]() -> bool {
                Bytes blob;
                try {
                    blob = sh.dmaPostedRead(
                        respAddr, bytes + dmachan::kDmaRespOverhead);
                } catch (const SalusError &) {
                    return false;
                }
                auto plain = dmachan::openReadResponse(
                    *aesCtx, macKey, slot, seq, ctrBase, blob);
                if (!plain || plain->size() != bytes)
                    return false;
                std::copy(plain->begin(), plain->end(),
                          out->begin() + long(dataOff));
                secureZero(*plain);
                return true;
            };
        }
        work.push_back(std::move(w));
    }

    // Stages one sealed descriptor into its DRAM slot and rings the
    // doorbell (posted: the engine owns all time attribution).
    auto stage = [&sh](uint64_t seq, const Bytes &encoded) {
        uint64_t addr =
            kDmaStagingBase +
            (seq % dmachan::kDmaMaxWindow) * kDmaStagingStride;
        sh.dmaPostedWrite(addr, encoded);
        sh.dmaPostedRegWrite(pcie::Window::SmSecure, kSmRegIn0, addr);
        sh.dmaPostedRegWrite(pcie::Window::SmSecure, kSmRegIn1,
                             encoded.size());
        sh.dmaPostedRegWrite(pcie::Window::SmSecure, kSmRegCmd,
                             kSmCmdDmaDoorbell);
    };

    // Reorder stash: a reorder fault holds one descriptor back until
    // the next delivery event, so it arrives behind a later sequence
    // number and exercises the fabric's reorder buffer.
    struct DeliverState
    {
        bool haveStash = false;
        uint64_t stashSeq = 0;
        Bytes stash;
    };
    auto state = std::make_shared<DeliverState>();

    dmachan::DmaWindowHooks hooks;
    hooks.sim = deps_.sim;
    hooks.deliver = [this, state, stage](uint64_t seq,
                                         const Bytes &encoded) {
        auto flushStash = [&]() {
            if (!state->haveStash)
                return;
            state->haveStash = false;
            Bytes held = std::move(state->stash);
            stage(state->stashSeq, held);
        };
        // The injector mutates its copy; the engine keeps the cached
        // original for retransmits.
        Bytes copy = encoded;
        if (deps_.fault) {
            sim::DmaFault f =
                deps_.fault->onDmaDescriptor(activeDevice_, seq, copy);
            if (f.drop) {
                flushStash();
                return;
            }
            if (f.reorder) {
                flushStash();
                state->stash = std::move(copy);
                state->stashSeq = seq;
                state->haveStash = true;
                return;
            }
        }
        stage(seq, copy);
        flushStash();
    };
    hooks.readAck = [&sh, slot, macKey](uint64_t &ackSeq) -> bool {
        sh.dmaPostedRegWrite(pcie::Window::SmSecure, kSmRegIn0, slot);
        sh.dmaPostedRegWrite(pcie::Window::SmSecure, kSmRegCmd,
                             kSmCmdDmaAck);
        if (sh.dmaPostedRegRead(pcie::Window::SmSecure, kSmRegStatus) !=
            kSmStatusOk)
            return false;
        uint64_t seq =
            sh.dmaPostedRegRead(pcie::Window::SmSecure, kSmRegOut0);
        uint64_t mac =
            sh.dmaPostedRegRead(pcie::Window::SmSecure, kSmRegOut1);
        if (mac != dmachan::ackMac(macKey, slot, seq))
            return false;
        ackSeq = seq;
        return true;
    };

    dmachan::DmaWindowEngine::Options engineOpts;
    engineOpts.window = opts.windowSize;
    engineOpts.maxAttempts = opts.maxAttempts;
    dmachan::DmaWindowEngine engine(std::move(hooks), engineOpts);
    report = engine.run(work);
    obs::count("dma.bytes", report.bytes);

    if (report.status == 0xf8 && deps_.onDeviceFailure) {
        // Every send of some descriptor was lost or rejected — the
        // same supervisor cue as an exhausted register channel.
        ErrorContext ctx;
        ctx.from = deps_.selfEndpoint;
        ctx.to = "device-" + std::to_string(activeDevice_);
        ctx.method = "dmaTransfer";
        ctx.attempt = int(opts.maxAttempts);
        deps_.onDeviceFailure(activeDevice_, ctx);
    }
    return report;
}

// ---- Fleet supervision ----------------------------------------------

SmEnclaveApp::HeartbeatResult
SmEnclaveApp::heartbeatDevice(uint32_t deviceId)
{
    obs::Span span(obs::Category::Supervisor, "heartbeat_device",
                   uint64_t(deviceId));
    obs::count("supervisor.heartbeats");
    HeartbeatResult res;
    if (deviceId >= devices_.size() ||
        devices_[deviceId].shell == nullptr) {
        res.failure = "unknown device";
        return res;
    }
    shell::Shell &sh = *devices_[deviceId].shell;

    if (deviceId == activeDevice_ && haveSecrets_ && status_.ok()) {
        // MAC'd probe under Key_attest: only the CL this enclave
        // deployed can answer, and the bound beat count makes every
        // answer unique — a recorded "alive" does not replay.
        uint64_t nonce = rng().nextU64();
        uint64_t dna = devices_[deviceId].dna;
        sh.registerWrite(pcie::Window::SmSecure, kSmRegIn0, nonce);
        sh.registerWrite(
            pcie::Window::SmSecure, kSmRegIn1,
            regchan::heartbeatRequestMac(secrets_.keyAttest, nonce, dna));
        sh.registerWrite(pcie::Window::SmSecure, kSmRegCmd,
                         kSmCmdHeartbeat);

        uint64_t status =
            sh.registerRead(pcie::Window::SmSecure, kSmRegStatus);
        if (status != kSmStatusOk) {
            res.failure =
                "no heartbeat (status " + std::to_string(status) + ")";
            return res;
        }
        res.reachable = true;
        uint64_t outNonce =
            sh.registerRead(pcie::Window::SmSecure, kSmRegOut0);
        res.count = sh.registerRead(pcie::Window::SmSecure, kSmRegOut1);
        uint64_t mac =
            sh.registerRead(pcie::Window::SmSecure, kSmRegOut2);
        if (outNonce != nonce + 1 ||
            mac != regchan::heartbeatResponseMac(secrets_.keyAttest,
                                                 nonce, dna, res.count)) {
            res.failure = "heartbeat response MAC forged";
            return res; // reachable but inauthentic — quarantine-worthy
        }
        res.authentic = true;
        return res;
    }

    // Spare (or not-yet-booted) device: no injected Key_attest to MAC
    // with yet, so probe raw bus sanity. An idle partition answers
    // status reads with small well-known codes; a dead bus times out
    // and the driver surfaces garbage TLP residue.
    uint64_t a = sh.registerRead(pcie::Window::SmSecure, kSmRegStatus);
    uint64_t b = sh.registerRead(pcie::Window::SmSecure, kSmRegStatus);
    if (a > kSmStatusRejected || b > kSmStatusRejected) {
        res.failure = "bus returned garbage";
        return res;
    }
    res.reachable = true;
    res.authentic = true; // nothing to authenticate until deployed
    return res;
}

bool
SmEnclaveApp::setActiveDevice(uint32_t deviceId)
{
    if (deviceId >= devices_.size() ||
        devices_[deviceId].shell == nullptr)
        return false;
    if (deviceId == activeDevice_)
        return true;
    // The old device's session dies here: fingerprint + wipe its
    // secrets so nothing derived from them can ever serve again.
    retireCurrentSecrets();
    clearPendingRekey();
    status_ = ClBootStatus{};
    activeDevice_ = deviceId;
    commitJournal();
    return true;
}

MigrationTicket
SmEnclaveApp::issueMigrationTicket(uint32_t toDevice)
{
    if (failClosed_)
        throw MigrationError("enclave is failed closed");
    if (!haveSecrets_ || !status_.attested)
        throw MigrationError("no live attested session to migrate");
    if (toDevice >= devices_.size() ||
        devices_[toDevice].shell == nullptr)
        throw MigrationError("no such pool device " +
                             std::to_string(toDevice));
    if (toDevice == activeDevice_)
        throw MigrationError("target is already the active device");

    MigrationTicket t;
    t.fromDevice = activeDevice_;
    t.toDevice = toDevice;
    t.fromDna = devices_[activeDevice_].dna;
    t.toDna = devices_[toDevice].dna;
    t.nonce = rng().nextU64();
    t.sourceFingerprint = secrets_.fingerprint();
    t.mac = regchan::migrationTicketMac(
        secrets_.keyAttest, t.fromDevice, t.toDevice, t.fromDna,
        t.toDna, t.nonce, t.sourceFingerprint);
    return t;
}

bool
SmEnclaveApp::commitMigration(const MigrationTicket &ticket)
{
    // The ticket travels through the untrusted supervisor: every
    // field is attacker-influencable, so verification failures return
    // false instead of throwing.
    if (failClosed_ || !haveSecrets_ || !status_.attested)
        return false;
    if (ticket.fromDevice != activeDevice_)
        return false;
    if (ticket.toDevice >= devices_.size() ||
        devices_[ticket.toDevice].shell == nullptr ||
        ticket.toDevice == activeDevice_)
        return false;
    if (ticket.fromDna != devices_[activeDevice_].dna ||
        ticket.toDna != devices_[ticket.toDevice].dna)
        return false;
    // Epoch binding: a ticket for an already-retired secret set (the
    // migration it authorized committed, or a failover rolled the
    // keys) no longer matches the live fingerprint — replay is dead.
    if (ticket.sourceFingerprint != secrets_.fingerprint())
        return false;
    if (ticket.mac !=
        regchan::migrationTicketMac(
            secrets_.keyAttest, ticket.fromDevice, ticket.toDevice,
            ticket.fromDna, ticket.toDna, ticket.nonce,
            ticket.sourceFingerprint))
        return false;

    obs::count("sm.migrations");
    // Trusted half of the move — identical shape to a failover
    // switch: tombstone the source epoch so its key material can
    // never serve on two devices, reset the deployment state, make
    // the target active and journal the switch. The caller's next
    // runSecureBoot injects a fresh RoT and re-attests the target.
    retireCurrentSecrets();
    clearPendingRekey();
    status_ = ClBootStatus{};
    activeDevice_ = ticket.toDevice;
    commitJournal();
    return true;
}

Bytes
SmEnclaveApp::secretsFingerprint() const
{
    return haveSecrets_ ? secrets_.fingerprint() : Bytes();
}

bool
SmEnclaveApp::everRetiredFingerprint(ByteView fp) const
{
    return retiredFingerprints_.count(Bytes(fp.begin(), fp.end())) != 0;
}

void
SmEnclaveApp::retireCurrentSecrets()
{
    // Derived slot keys are functions of the retiring base keys: wipe
    // them too. The next batch on each slot lazily re-opens it under
    // the fresh base session.
    for (auto &[slot, s] : extraSessions_)
        secureZero(s.keySession);
    extraSessions_.clear();
    // Cached schedules hold expansions of the retiring keys; drop them
    // (Aes's destructor wipes the round keys).
    for (auto &[slot, c] : slotAesCache_)
        secureZero(c.key);
    slotAesCache_.clear();
    if (!haveSecrets_)
        return;
    retiredFingerprints_.insert(secretsFingerprint());
    secrets_.wipe();
    haveSecrets_ = false;
    sessionCtr_ = 0;
    ctrReserve_ = 0;
    // Fresh keys mean a fresh keystream space, so the DMA sequence
    // space restarts with them (the fabric's window resets on open).
    dmaSeq_ = 0;
    dmaSeqReserve_ = 0;
}

uint64_t
SmEnclaveApp::nextSessionCtr()
{
    uint64_t ctr = sessionCtr_ + 1;
    if (ctr > ctrReserve_ && deps_.storeJournal) {
        // Write-ahead: extend the reservation BEFORE the counter is
        // used. If the commit crashes, the old journal's reservation
        // still covers everything the fabric ever saw, so a recovered
        // SM resumes past it and never re-issues a counter.
        ctrReserve_ = ctr + kCtrReserveStride;
        commitJournal();
    }
    sessionCtr_ = ctr;
    return ctr;
}

// ---- Crash-recovery journal -----------------------------------------

SmJournal
SmEnclaveApp::buildJournal() const
{
    SmJournal j;
    j.haveMetadata = haveMetadata_ ? 1 : 0;
    if (haveMetadata_)
        j.metadata = metadata_.serialize();
    for (const auto &[dna, key] : deviceKeys_)
        j.deviceKeys.emplace_back(dna, key);
    for (uint32_t i = 0; i < devices_.size(); ++i) {
        SmJournalDevice d;
        d.deviceId = i;
        d.dna = devices_[i].dna;
        if (i == activeDevice_) {
            d.deployed = status_.deployed ? 1 : 0;
            d.attested = status_.attested ? 1 : 0;
            if (haveSecrets_) {
                d.haveSecrets = 1;
                d.keyAttest = secrets_.keyAttest;
                d.keySession = secrets_.keySession;
                d.ctrBase = secrets_.ctrBase;
                d.ctrReserve = ctrReserve_;
                d.dmaSeqReserve = dmaSeqReserve_;
                if (havePendingRekey_) {
                    d.havePendingRekey = 1;
                    d.pendingRekeyMacKey = pendingRekeyMacKey_;
                    d.pendingRekeyNonce = pendingRekeyNonce_;
                }
                for (const auto &[slot, s] : extraSessions_) {
                    SmJournalSession js;
                    js.slot = slot;
                    js.keySession = s.keySession;
                    js.openNonce = s.openNonce;
                    js.ctrReserve = s.reserve;
                    js.dmaSeqReserve = s.dmaSeqReserve;
                    d.sessions.push_back(std::move(js));
                }
            }
        }
        j.devices.push_back(std::move(d));
    }
    j.activeDevice = activeDevice_;
    for (const Bytes &fp : retiredFingerprints_)
        j.retiredFingerprints.push_back(fp);
    return j;
}

void
SmEnclaveApp::commitJournal()
{
    if (!deps_.storeJournal)
        return; // journal-less legacy mode
    obs::count("sm.journal_commits");

    uint64_t step = journalSeq_++;
    if (deps_.fault && deps_.fault->onSmJournalWrite(step, false))
        throw SmCrashError("before journal write " +
                           std::to_string(step));

    SmJournal j = buildJournal();
    // Store-then-increment: the stored version is one ahead of the
    // counter until the increment lands. Rehydration accepts exactly
    // that one-step window (monotonicAdvanceTo catches the counter
    // up); anything older is a rollback.
    j.version = platform().monotonicRead(kJournalCounterId) + 1;
    Bytes plain = j.serialize();
    deps_.storeJournal(seal(plain));
    secureZero(plain);
    platform().monotonicIncrement(kJournalCounterId);

    if (deps_.fault && deps_.fault->onSmJournalWrite(step, true))
        throw SmCrashError("after journal write " +
                           std::to_string(step));
}

SmEnclaveApp::RecoveryReport
SmEnclaveApp::rehydrate()
{
    obs::Span span(obs::Category::Boot, "rehydrate");
    obs::count("sm.rehydrations");
    RecoveryReport rep;
    rep.counter = platform().monotonicRead(kJournalCounterId);

    Bytes blob = deps_.fetchJournal ? deps_.fetchJournal() : Bytes();
    if (blob.empty()) {
        if (rep.counter == 0) {
            rep.status = RecoveryStatus::NoJournal;
            return rep; // genuinely fresh platform
        }
        failClosed_ = true;
        rep.status = RecoveryStatus::RolledBack;
        rep.detail = "journal missing but monotonic counter is " +
                     std::to_string(rep.counter);
        return rep;
    }

    auto plain = unseal(blob);
    if (!plain) {
        failClosed_ = true;
        rep.status = RecoveryStatus::Corrupt;
        rep.detail = "journal seal authentication failed";
        return rep;
    }
    SmJournal j;
    try {
        j = SmJournal::deserialize(*plain);
    } catch (const SalusError &e) {
        failClosed_ = true;
        rep.status = RecoveryStatus::Corrupt;
        rep.detail = std::string("journal parse failed: ") + e.what();
        return rep;
    }
    if (j.version < rep.counter) {
        // The host handed us an OLD sealed journal: rollback attack
        // (or lost storage). Either way the session metadata in it is
        // stale — serving it could reuse counters/keys. Fail closed.
        failClosed_ = true;
        rep.version = j.version;
        rep.status = RecoveryStatus::RolledBack;
        rep.detail = "journal version " + std::to_string(j.version) +
                     " behind monotonic counter " +
                     std::to_string(rep.counter);
        return rep;
    }
    try {
        // version == counter: the increment landed before the crash.
        // version == counter + 1: crashed inside the store/increment
        // window — catch the counter up. Anything further ahead is a
        // fabricated future version.
        platform().monotonicAdvanceTo(kJournalCounterId, j.version);
    } catch (const TeeError &e) {
        failClosed_ = true;
        rep.status = RecoveryStatus::Corrupt;
        rep.detail = std::string("journal version implausible: ") +
                     e.what();
        return rep;
    }
    if (j.activeDevice >= devices_.size()) {
        failClosed_ = true;
        rep.status = RecoveryStatus::Corrupt;
        rep.detail = "journal names a device outside the pool";
        return rep;
    }

    // ---- Adopt -------------------------------------------------------
    rep.version = j.version;
    journalSeq_ = j.version;
    if (j.haveMetadata) {
        metadata_ = ClMetadata::deserialize(j.metadata);
        haveMetadata_ = true;
    }
    deviceKeys_.clear();
    for (const auto &[dna, key] : j.deviceKeys)
        deviceKeys_[dna] = key;
    retiredFingerprints_.clear();
    for (const Bytes &fp : j.retiredFingerprints)
        retiredFingerprints_.insert(fp);
    activeDevice_ = j.activeDevice;
    status_ = ClBootStatus{};
    for (const SmJournalDevice &d : j.devices) {
        if (d.deviceId != activeDevice_)
            continue;
        status_.deployed = d.deployed != 0;
        status_.attested = d.attested != 0;
        if (d.haveSecrets) {
            secrets_.keyAttest = d.keyAttest;
            secrets_.keySession = d.keySession;
            secrets_.ctrBase = d.ctrBase;
            haveSecrets_ = true;
            ctrReserve_ = d.ctrReserve;
            // Resume PAST the reservation: counters inside it may
            // already have hit the fabric before the crash.
            sessionCtr_ = std::max(d.ctrBase, d.ctrReserve);
            // Same for the DMA sequence space: the next transfer's
            // sync descriptor jumps the fabric's window forward over
            // whatever part of the reservation was never used.
            dmaSeqReserve_ = d.dmaSeqReserve;
            dmaSeq_ = d.dmaSeqReserve;
            if (d.havePendingRekey) {
                pendingRekeyMacKey_ = d.pendingRekeyMacKey;
                pendingRekeyNonce_ = d.pendingRekeyNonce;
                havePendingRekey_ = true;
            }
            extraSessions_.clear();
            for (const SmJournalSession &s : d.sessions) {
                if (s.slot == 0 || s.slot >= kSmMaxSessions)
                    continue; // implausible journal entry
                FabricSession fs;
                fs.keySession = s.keySession;
                fs.openNonce = s.openNonce;
                fs.reserve = s.ctrReserve;
                // Resume PAST the reservation: counters inside it may
                // already have hit the fabric before the crash.
                fs.ctr = s.ctrReserve;
                fs.dmaSeqReserve = s.dmaSeqReserve;
                fs.dmaSeq = s.dmaSeqReserve;
                extraSessions_[s.slot] = std::move(fs);
            }
        }
    }

    // ---- Re-attest before serving traffic ----------------------------
    if (status_.attested && haveSecrets_) {
        std::string failure;
        if (!attestCl(failure)) {
            status_.attested = false;
            status_.failure =
                "post-recovery re-attestation failed: " + failure;
            ++rep.reattestFailures;
        }
    }
    rep.status = RecoveryStatus::Recovered;
    return rep;
}

} // namespace salus::core
