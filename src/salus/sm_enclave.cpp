#include "salus/sm_enclave.hpp"

#include "bitstream/encryptor.hpp"
#include "bitstream/manipulator.hpp"
#include "common/errors.hpp"
#include "common/log.hpp"
#include "common/serde.hpp"
#include "crypto/aes_gcm.hpp"
#include "crypto/sha256.hpp"
#include "crypto/x25519.hpp"
#include "manufacturer/manufacturer.hpp"
#include "salus/sm_logic.hpp"

namespace salus::core {

namespace {

const char *const kDirUp = "salus-chan-u2s";   // user -> SM
const char *const kDirDown = "salus-chan-s2u"; // SM -> user

} // namespace

tee::EnclaveImage
SmEnclaveApp::defaultImage()
{
    tee::EnclaveImage image;
    image.name = "salus-sm-app";
    image.signer = "salus-hdk-vendor";
    image.isvSvn = 1;
    image.code = bytesFromString(
        "salus secure-manager enclave v1.0: bitstream verification, "
        "manipulation, encryption, CL attestation, register channel");
    return image;
}

tee::Measurement
SmEnclaveApp::defaultMeasurement()
{
    return defaultImage().measure();
}

SmEnclaveApp::SmEnclaveApp(tee::TeePlatform &platform, SmEnclaveDeps deps)
    : tee::Enclave(platform, defaultImage()), deps_(std::move(deps))
{
    // Accept any same-platform initiator; policy pinning happens on
    // the user side (and at the manufacturer for key release).
    la_ = std::make_unique<tee::LocalAttestResponder>(
        *this, tee::Measurement{});
}

Bytes
SmEnclaveApp::laAnswer(ByteView msg1)
{
    auto msg2 = la_->answer(msg1);
    return msg2 ? *msg2 : Bytes();
}

bool
SmEnclaveApp::laConfirm(ByteView msg3)
{
    bool ok = la_->confirm(msg3);
    if (ok) {
        // New LA session => new session key => fresh sequence space.
        channelSeq_ = 0;
    }
    return ok;
}

bool
SmEnclaveApp::laEstablished() const
{
    return la_->established();
}

Bytes
SmEnclaveApp::channelRequest(ByteView sealed)
{
    if (!la_->established())
        return Bytes();

    uint64_t seq = channelSeq_ + 1;
    auto plain = channelOpen(la_->session().key, kDirUp, seq, sealed);
    if (!plain) {
        logf(LogLevel::Warn, "sm-enclave",
             "rejecting channel request (bad seal/seq)");
        return Bytes();
    }
    channelSeq_ = seq;

    Bytes response = handlePlainRequest(*plain);
    return channelSeal(la_->session().key, kDirDown, seq, response);
}

Bytes
SmEnclaveApp::handlePlainRequest(ByteView plain)
{
    BinaryWriter out;
    try {
        BinaryReader r(plain);
        auto type = SmChannelMsg(r.readU8());
        switch (type) {
          case SmChannelMsg::SetMetadata: {
            metadata_ = ClMetadata::deserialize(r.readBytes());
            haveMetadata_ = true;
            out.writeU8(1);
            break;
          }
          case SmChannelMsg::RunSecureBoot: {
            status_ = ClBootStatus{};
            std::string failure;
            if (!haveMetadata_) {
                failure = "no bitstream metadata";
            } else if (!haveDeviceKey_ && !fetchDeviceKey(failure)) {
                // failure set by fetchDeviceKey
            } else if (deployCl(failure)) {
                status_.deployed = true;
                if (attestCl(failure))
                    status_.attested = true;
            }
            status_.failure = failure;
            out.writeRaw(status_.serialize());
            break;
          }
          case SmChannelMsg::SecureRegOp: {
            regchan::RegOp op;
            op.isWrite = r.readU8() != 0;
            op.addr = r.readU32();
            op.data = r.readU64();
            auto [st, data] = secureRegOp(op);
            out.writeU8(st);
            out.writeU64(data);
            break;
          }
          case SmChannelMsg::QueryStatus:
            out.writeRaw(status_.serialize());
            break;
          case SmChannelMsg::RekeySession:
            out.writeU8(rekeySession() ? 1 : 0);
            break;
          default:
            out.writeU8(0xff);
            break;
        }
    } catch (const SalusError &e) {
        logf(LogLevel::Warn, "sm-enclave", "bad channel request: ",
             e.what());
        out.writeU8(0xfe);
    }
    return out.take();
}

bool
SmEnclaveApp::fetchDeviceKey(std::string &failure)
{
    PhaseScope phase(deps_.sim, phases::kDeviceKeyDist);

    // Ephemeral wrap key; the quote binds its public half so the OS
    // cannot substitute its own.
    crypto::X25519KeyPair eph = crypto::x25519Generate(rng());

    deps_.sim.spend(phases::kDeviceKeyDist,
                    deps_.sim.active() ? deps_.sim.cost->quoteGeneration +
                                             2 * deps_.sim.cost->enclaveTransition
                                       : 0);
    tee::Quote quote = createQuote(eph.publicKey);

    manufacturer::KeyRequest req;
    req.deviceDna = deps_.instanceDeviceDna;
    req.quote = quote.serialize();
    req.wrapPubKey = eph.publicKey;

    Bytes respBytes;
    try {
        respBytes = deps_.network->call(
            deps_.selfEndpoint, deps_.manufacturerEndpoint, "keyRequest",
            req.serialize(), phases::kDeviceKeyDist);
    } catch (const NetError &e) {
        failure = std::string("key request failed: ") + e.what();
        return false;
    }

    manufacturer::KeyResponse resp;
    try {
        resp = manufacturer::KeyResponse::deserialize(respBytes);
    } catch (const SalusError &) {
        failure = "malformed key response";
        return false;
    }
    if (resp.status != 0) {
        failure = "manufacturer refused key: " + resp.reason;
        return false;
    }

    Bytes wrapKey;
    try {
        wrapKey = crypto::deriveSessionKey(
            eph.privateKey, resp.serverEphPub, "salus-keydist-v1", 32);
    } catch (const CryptoError &) {
        failure = "bad server ephemeral key";
        return false;
    }
    crypto::AesGcm gcm(wrapKey);
    auto key = gcm.open(resp.iv, ByteView(), resp.wrappedKey, resp.tag);
    secureZero(wrapKey);
    if (!key || key->size() != 32) {
        failure = "device key unwrap failed";
        return false;
    }
    deviceKey_ = std::move(*key);
    haveDeviceKey_ = true;
    return true;
}

bool
SmEnclaveApp::deployCl(std::string &failure)
{
    Bytes file = deps_.fetchBitstream ? deps_.fetchBitstream() : Bytes();
    if (file.empty()) {
        failure = "bitstream not available";
        return false;
    }

    // --- Verify against H (step: bitstream verification) -------------
    {
        PhaseScope phase(deps_.sim, phases::kBitstreamVerifEnc);
        if (deps_.sim.active()) {
            deps_.sim.spend(phases::kBitstreamVerifEnc,
                            deps_.sim.cost->bitstreamVerifyEncrypt(
                                file.size()) / 2);
        }
        Bytes digest = crypto::Sha256::digest(file);
        if (digest != metadata_.digestH) {
            failure = "bitstream digest mismatch (tampered or wrong CL)";
            return false;
        }
    }

    // --- Inject fresh secrets (bitstream manipulation) ----------------
    bitstream::LogicLocationFile ll;
    try {
        ll = bitstream::LogicLocationFile::deserialize(
            metadata_.logicLocations);
    } catch (const BitstreamError &) {
        failure = "bad logic-location metadata";
        return false;
    }

    secrets_ = ClSecrets::generate(rng());
    haveSecrets_ = true;
    sessionCtr_ = secrets_.ctrBase;
    try {
        PhaseScope phase(deps_.sim, phases::kBitstreamManip);
        if (deps_.sim.active()) {
            deps_.sim.spend(
                phases::kBitstreamManip,
                deps_.sim.cost->bitstreamManipulation(file.size()));
        }
        bitstream::Manipulator::patchCell(
            file, ll, metadata_.keyAttestPath, secrets_.keyAttest);
        bitstream::Manipulator::patchCell(
            file, ll, metadata_.keySessionPath, secrets_.keySession);
        bitstream::Manipulator::patchCell(
            file, ll, metadata_.ctrSessionPath, secrets_.ctrBytes());
    } catch (const BitstreamError &e) {
        failure = std::string("manipulation failed: ") + e.what();
        return false;
    }

    // --- Encrypt under Key_device -------------------------------------
    Bytes blob;
    {
        PhaseScope phase(deps_.sim, phases::kBitstreamVerifEnc);
        if (deps_.sim.active()) {
            deps_.sim.spend(phases::kBitstreamVerifEnc,
                            deps_.sim.cost->bitstreamVerifyEncrypt(
                                file.size()) / 2);
        }
        bitstream::EncryptedHeader header;
        header.deviceModel = deps_.shell->device().model().name;
        header.partitionId = deps_.shell->partitionId();
        blob = bitstream::encryptBitstream(file, deviceKey_, header,
                                           rng());
        secureZero(file); // plaintext with secrets never leaves
    }

    // --- Hand to the (untrusted) shell for loading --------------------
    {
        PhaseScope phase(deps_.sim, phases::kClDeployment);
        fpga::LoadStatus st = deps_.shell->deployBitstream(blob);
        if (st != fpga::LoadStatus::Ok) {
            failure = std::string("device rejected bitstream: ") +
                      fpga::loadStatusName(st);
            return false;
        }
    }
    return true;
}

bool
SmEnclaveApp::attestCl(std::string &failure)
{
    PhaseScope phase(deps_.sim, phases::kClAuth);
    if (deps_.sim.active()) {
        deps_.sim.spend(phases::kClAuth,
                        2 * deps_.sim.cost->smLogicMac +
                            2 * deps_.sim.cost->enclaveTransition +
                            2 * deps_.sim.cost->fpgaDnaReadout);
    }

    uint64_t nonce = rng().nextU64();
    uint64_t dna = deps_.instanceDeviceDna;
    uint64_t macReq =
        regchan::attestRequestMac(secrets_.keyAttest, nonce, dna);

    shell::Shell &sh = *deps_.shell;
    sh.registerWrite(pcie::Window::SmSecure, kSmRegIn0, nonce);
    sh.registerWrite(pcie::Window::SmSecure, kSmRegIn1, macReq);
    sh.registerWrite(pcie::Window::SmSecure, kSmRegCmd, kSmCmdAttest);

    uint64_t status = sh.registerRead(pcie::Window::SmSecure,
                                      kSmRegStatus);
    uint64_t outNonce = sh.registerRead(pcie::Window::SmSecure,
                                        kSmRegOut0);
    uint64_t macRsp = sh.registerRead(pcie::Window::SmSecure,
                                      kSmRegOut1);

    if (status != kSmStatusOk) {
        failure = "CL refused attestation request";
        return false;
    }
    uint64_t expect =
        regchan::attestResponseMac(secrets_.keyAttest, nonce, dna);
    if (outNonce != nonce + 1 || macRsp != expect) {
        failure = "CL attestation MAC mismatch";
        return false;
    }
    return true;
}

Bytes
SmEnclaveApp::exportSealedDeviceKey() const
{
    if (!haveDeviceKey_)
        return Bytes();
    return seal(deviceKey_);
}

bool
SmEnclaveApp::importSealedDeviceKey(ByteView sealedBlob)
{
    auto key = unseal(sealedBlob);
    if (!key || key->size() != 32)
        return false;
    deviceKey_ = std::move(*key);
    haveDeviceKey_ = true;
    return true;
}

bool
SmEnclaveApp::rekeySession()
{
    if (!haveSecrets_ || !status_.ok())
        return false;

    uint64_t ctr = ++sessionCtr_;
    uint64_t nonce = rng().nextU64();
    uint64_t mac =
        regchan::rekeyMac(secrets_.sessionMacKey(), ctr, nonce);

    shell::Shell &sh = *deps_.shell;
    sh.registerWrite(pcie::Window::SmSecure, kSmRegIn0, ctr);
    sh.registerWrite(pcie::Window::SmSecure, kSmRegIn1, nonce);
    sh.registerWrite(pcie::Window::SmSecure, kSmRegIn3, mac);
    sh.registerWrite(pcie::Window::SmSecure, kSmRegCmd, kSmCmdRekey);
    if (sh.registerRead(pcie::Window::SmSecure, kSmRegStatus) !=
        kSmStatusOk) {
        // The command was dropped/tampered in flight; our counter
        // advanced but keys did not change on either side.
        return false;
    }

    auto [aes, macKey] =
        regchan::deriveRekeyedKeys(secrets_.sessionMacKey(), nonce);
    std::copy(aes.begin(), aes.end(), secrets_.keySession.begin());
    std::copy(macKey.begin(), macKey.end(),
              secrets_.keySession.begin() + 16);
    secureZero(aes);
    secureZero(macKey);
    return true;
}

bool
SmEnclaveApp::reattestCl()
{
    if (!haveSecrets_)
        return false;
    std::string failure;
    bool ok = attestCl(failure);
    if (!ok) {
        logf(LogLevel::Warn, "sm-enclave",
             "runtime re-attestation failed: ", failure);
        status_.attested = false;
        status_.failure = failure;
    }
    return ok;
}

std::pair<uint8_t, uint64_t>
SmEnclaveApp::secureRegOp(const regchan::RegOp &op)
{
    if (!haveSecrets_ || !status_.ok())
        return {0xfd, 0}; // no attested CL behind the channel

    uint64_t ctr = ++sessionCtr_;
    regchan::SealedRegRequest req = regchan::sealRequest(
        secrets_.sessionAesKey(), secrets_.sessionMacKey(), ctr, op);

    shell::Shell &sh = *deps_.shell;
    sh.registerWrite(pcie::Window::SmSecure, kSmRegIn0, req.ctr);
    sh.registerWrite(pcie::Window::SmSecure, kSmRegIn1, req.ct0);
    sh.registerWrite(pcie::Window::SmSecure, kSmRegIn2, req.ct1);
    sh.registerWrite(pcie::Window::SmSecure, kSmRegIn3, req.mac);
    sh.registerWrite(pcie::Window::SmSecure, kSmRegCmd, kSmCmdSecureReg);

    if (sh.registerRead(pcie::Window::SmSecure, kSmRegStatus) !=
        kSmStatusOk) {
        return {0xfc, 0}; // CL rejected (tamper/replay on the bus)
    }
    regchan::SealedRegResponse rsp;
    rsp.ct0 = sh.registerRead(pcie::Window::SmSecure, kSmRegOut0);
    rsp.ct1 = sh.registerRead(pcie::Window::SmSecure, kSmRegOut1);
    rsp.mac = sh.registerRead(pcie::Window::SmSecure, kSmRegOut2);

    auto opened = regchan::openResponse(
        secrets_.sessionAesKey(), secrets_.sessionMacKey(), ctr, rsp);
    if (!opened)
        return {0xfb, 0}; // response forged or corrupted
    return *opened;
}

} // namespace salus::core
