/**
 * @file
 * Declarative chaos-scenario engine: table-driven campaign files that
 * combine a device fleet, a tenant mix with QoS weights and admission
 * policies, a fault plan over virtual time, and an attack schedule —
 * plus the outcome invariants the run must satisfy. A campaign is
 * DATA: adding a gallery entry means writing a text file, not C++
 * (docs/SCENARIOS.md documents the schema).
 *
 * Format: strict INI. `[section]` headers, `key = value` lines, `#`
 * comments. Sections: `[scenario]`, `[broker]`, `[tenant <name>]`
 * (one per tenant), `[fault]` / `[action]` (repeatable, one rule or
 * action each), `[expect]`. Unknown sections or keys are ERRORS —
 * a typo must fail the parse, not silently weaken a campaign.
 *
 * Determinism contract: a scenario is driven entirely by the virtual
 * clock and the seeded fault/attack machinery, so running the same
 * file twice yields byte-identical obs traces and metrics dumps. The
 * gallery tests and `salus_cli run-scenario` enforce this on every
 * run.
 */

#ifndef SALUS_SALUS_SCENARIO_HPP
#define SALUS_SALUS_SCENARIO_HPP

#include <string>
#include <vector>

#include "salus/broker.hpp"
#include "sim/fault.hpp"

namespace salus::core {

/** Thrown on any malformed scenario file (fuzzed entry point). */
class ScenarioError : public SalusError
{
  public:
    explicit ScenarioError(const std::string &what)
        : SalusError("scenario: " + what)
    {}
};

/** One tenant: admission policy plus a synthetic traffic pattern. */
struct ScenarioTenant
{
    std::string name;
    TenantPolicy policy;
    /** Sessions the tenant opens at campaign start. */
    uint32_t sessions = 1;
    /** Traffic shape: flood | burst | trickle | idle. */
    std::string pattern = "trickle";
    /** Submission attempts per sweep while active (policy rejections
     *  are expected and counted, not fatal). */
    uint32_t opsPerSweep = 8;
    uint32_t startSweep = 0;
    uint32_t stopSweep = ~uint32_t(0);
    /** burst pattern: sweeps on / sweeps off per cycle. */
    uint32_t burstOn = 4;
    uint32_t burstOff = 4;
};

/** One fault rule in scenario-file form (mapped onto sim::FaultRule). */
struct ScenarioFault
{
    /** drop_rpc | corrupt_rpc | duplicate_rpc | reorder_rpc |
     *  delay_rpc | reg_fault | bitstream_load_fail | seu |
     *  device_dead | heartbeat_loss | dma_drop | dma_corrupt |
     *  dma_reorder */
    std::string kind;
    double probability = 1.0;
    std::string from, to, method; ///< RPC site narrowing
    uint32_t device = sim::kAnyDevice;
    uint32_t partition = 0; ///< seu
    uint64_t bit = 0;       ///< seu
    uint64_t delayUs = 0;   ///< delay_rpc
    uint64_t atMs = 0;      ///< window start (virtual ms)
    uint64_t untilMs = 0;   ///< window end; 0 = open-ended
    uint32_t times = 0;     ///< max firings; 0 = unbounded

    sim::FaultRule toRule() const;
};

/** One scheduled attack/maintenance action during the sweep loop. */
struct ScenarioAction
{
    /** rekey (SM session re-key) | replay (malicious shell replays
     *  recorded SM-window writes; needs malicious_shell = 1) | dma
     *  (submit one bulk transfer through the secure DMA lane). */
    std::string kind;
    uint32_t atSweep = 0;
    /** 0 = fire once at atSweep; else every N sweeps from atSweep. */
    uint32_t everySweeps = 0;
    /** dma action: payload size and sliding-window depth. */
    uint64_t bytes = 64 * 1024;
    uint32_t window = 8;

    bool firesAt(uint32_t sweep) const
    {
        if (sweep < atSweep)
            return false;
        if (everySweeps == 0)
            return sweep == atSweep;
        return (sweep - atSweep) % everySweeps == 0;
    }
};

/** Outcome invariants checked after the run (0 / absent = unchecked
 *  unless noted). */
struct ScenarioExpect
{
    uint64_t completedMin = 0;
    uint64_t quotaRejectedMin = 0;
    uint64_t rateRejectedMin = 0;
    uint64_t shedRejectedMin = 0;
    uint64_t seusMin = 0;
    /** Require the shed set to be empty after drain (recovery). */
    bool recoveredFromShed = false;
    /** Enforce the DRR starvation bound on every session (default
     *  ON — a scenario must opt out, never silently skip it). */
    bool noStarvation = true;
    /** Upper bound on failover events; ~0 = unchecked. */
    uint64_t failoversMax = ~uint64_t(0);
    /** Payload bytes the DMA plane must have delivered (status 0). */
    uint64_t dmaBytesMin = 0;
};

/** A parsed campaign. */
struct Scenario
{
    std::string name = "unnamed";
    uint64_t seed = 1;
    uint32_t devices = 1;
    uint32_t sweeps = 32;
    /** Supervisor pollOnce() cadence in sweeps; 0 = never. */
    uint32_t pollEvery = 4;
    bool maliciousShell = false;
    bool forgeHeartbeats = false;

    Broker::Config broker;
    std::vector<ScenarioTenant> tenants;
    std::vector<ScenarioFault> faults;
    std::vector<ScenarioAction> actions;
    ScenarioExpect expect;
};

/** Result of one scenario run, with the deterministic artifacts. */
struct ScenarioOutcome
{
    bool deployOk = false;
    uint64_t completed = 0;
    uint64_t admitted = 0;
    uint64_t quotaRejected = 0;
    uint64_t rateRejected = 0;
    uint64_t shedRejected = 0;
    uint64_t failovers = 0;
    uint64_t seusInjected = 0;
    uint64_t maxSweepsWaited = 0;
    uint64_t dmaJobs = 0;  ///< DMA jobs completed (any status)
    uint64_t dmaBytes = 0; ///< payload bytes delivered with status 0
    size_t shedLevelEnd = 0;
    sim::Nanos clockEnd = 0;
    /** (tenant name, stats) in registration order. */
    std::vector<std::pair<std::string, TenantStats>> tenants;
    /** Byte-comparable artifacts (same seed => identical). */
    std::string traceJson;
    std::string metricsText;
    /** Violated expectations (empty = all invariants held). */
    std::vector<std::string> violations;

    bool passed() const { return deployOk && violations.empty(); }
};

/** Parses a campaign from text. @throws ScenarioError (also on any
 *  malformed numeric / out-of-bounds value — fuzz target). */
Scenario parseScenario(const std::string &text);

/** Loads + parses a campaign file. @throws ScenarioError. */
Scenario parseScenarioFile(const std::string &path);

/** Runs one campaign end to end (deploy, sweep loop, drain,
 *  invariant evaluation). Deterministic per (file, seed). */
ScenarioOutcome runScenario(const Scenario &scenario);

/**
 * Runs one campaign with the sweep loop dispatched on the
 * deterministic event engine (sim::Engine, FIFO tie-breaking) instead
 * of the inline lockstep loop. Replays the exact lockstep call order,
 * so the artifacts are byte-identical to runScenario's — CI's
 * determinism gate diffs the two on every scenario in the gallery.
 */
ScenarioOutcome runScenarioOnEngine(const Scenario &scenario);

} // namespace salus::core

#endif // SALUS_SALUS_SCENARIO_HPP
