/**
 * @file
 * Structured boot-time reporting: turns a virtual-clock trace into
 * the Figure 9 phase breakdown, with the paper's reference numbers
 * attached. Shared by the quickstart example, the Figure 9 bench and
 * tests, so the phase list lives in exactly one place.
 */

#ifndef SALUS_SALUS_BOOT_REPORT_HPP
#define SALUS_SALUS_BOOT_REPORT_HPP

#include <string>
#include <vector>

#include "sim/clock.hpp"

namespace salus::core {

/** One row of the Figure 9 breakdown. */
struct BootPhaseRow
{
    std::string phase;
    sim::Nanos modelTime = 0; ///< virtual time attributed to the phase
    double paperMs = 0.0;     ///< the paper's measurement (Fig. 9)
};

/** The full breakdown plus totals. */
struct BootReport
{
    std::vector<BootPhaseRow> rows;
    sim::Nanos modelTotal = 0;
    double paperTotalMs = 0.0;

    /** The dominant phase by model time. */
    const BootPhaseRow &dominant() const;

    /** Renders an aligned text table. */
    std::string render() const;
};

/** Builds the Figure 9 report from a boot's clock trace. */
BootReport buildBootReport(const sim::VirtualClock &clock);

} // namespace salus::core

#endif // SALUS_SALUS_BOOT_REPORT_HPP
