/**
 * @file
 * Full-platform testbed: manufactures the hardware, provisions the
 * TEE, boots the cloud instance and wires the three network domains
 * of §6.1 (user client / cloud instance / manufacturer server). This
 * is the top of the public API — examples, integration tests and the
 * boot-time benches all drive a Testbed.
 *
 * The testbed owns a POOL of FPGA devices (deviceCount, default 1 for
 * the paper's single-device flows). Each device has its own eFUSE
 * Key_device, DeviceDNA, shell and fault-injector wiring; the SM
 * enclave holds the per-device deployment table, and a
 * FleetSupervisor watches heartbeats and drives attested failover.
 */

#ifndef SALUS_SALUS_TESTBED_HPP
#define SALUS_SALUS_TESTBED_HPP

#include <memory>

#include "manufacturer/manufacturer.hpp"
#include "salus/cl_builder.hpp"
#include "salus/developer.hpp"
#include "salus/scheduler.hpp"
#include "salus/sm_enclave.hpp"
#include "salus/supervisor.hpp"
#include "salus/user_client.hpp"
#include "salus/user_enclave.hpp"
#include "shell/attacks.hpp"
#include "sim/engine.hpp"

namespace salus::core {

/** Testbed construction options. */
struct TestbedConfig
{
    fpga::DeviceModelInfo deviceModel = fpga::testModel();
    uint64_t rngSeed = 1;
    /** Size of the FPGA pool (device 0 starts active). */
    uint32_t deviceCount = 1;
    /** Use MaliciousShells with this plan instead of honest ones
     *  (the CSP ships the same shell on every device). */
    bool maliciousShell = false;
    shell::AttackPlan attackPlan;
    /** Seeded deterministic fault schedule (default: fault-free). */
    sim::FaultPlan faultPlan;
    /** Retry schedule shared by the user client and the SM enclave.
     *  Default: the standard self-healing schedule (a fault-free run
     *  is trace-identical with retries on or off, since backoff is
     *  only charged after a failure). */
    net::RetryPolicy retry = net::RetryPolicy::standard();
    /** Health-breaker tuning for the fleet supervisor. */
    fpga::HealthPolicy health;
    /** Watchdog poll period on the virtual clock. */
    sim::Nanos heartbeatPeriod = 10 * sim::kMs;
    /** Cost model for the virtual clock (defaults: paper calibration). */
    sim::CostModel cost;
    /** The developer's user-enclave build. */
    tee::EnclaveImage userImage;
    /** Batch-scheduler tuning (multi-session secure channel). */
    size_t schedulerQueueCapacity = 256;
    size_t schedulerMaxBatchOps = 32;

    TestbedConfig();
};

/** Endpoint names used on the testbed network. */
namespace endpoints {
inline const char *const kUserClient = "user-client";
inline const char *const kCloudHost = "cloud-host";
inline const char *const kManufacturer = "mft-server";
inline const char *const kSupervisor = "fleet-supervisor";
} // namespace endpoints

/** A complete simulated deployment. */
class Testbed
{
  public:
    explicit Testbed(TestbedConfig config = {});
    ~Testbed();

    // RPC handlers and enclave dependencies capture `this`; the
    // testbed must stay at one address for its lifetime.
    Testbed(const Testbed &) = delete;
    Testbed &operator=(const Testbed &) = delete;

    /**
     * "Development phase": integrates the accelerator with the SM
     * logic, compiles the CL, and publishes bitstream + metadata to
     * the (untrusted) cloud storage this testbed models.
     */
    void installCl(netlist::Cell accelCell,
                   std::vector<netlist::Cell> extraCells = {});

    /**
     * Installs a developer-published signed artifact instead of
     * compiling locally (the realistic IP-marketplace flow).
     * @return false when the signature or digest check fails — the
     *         artifact is then NOT installed.
     */
    bool installArtifact(const ClArtifact &artifact,
                         ByteView expectedDeveloperKey);

    /** "Deployment phase": the full cascaded attestation flow.
     *  @param customize optional hook to adjust the client's policy
     *  (e.g. MRSIGNER pinning, minimum SVN) before it runs. */
    UserClient::Outcome runDeployment(
        const std::function<void(ClientConfig &)> &customize = nullptr);

    // ---- Component access for tests, benches and examples ----------
    sim::VirtualClock &clock() { return clock_; }
    const sim::CostModel &cost() const { return config_.cost; }
    net::Network &network() { return *network_; }
    /** The shared fault fabric (always present; no-op when the plan
     *  is empty). Tests arm additional rules at runtime through it. */
    sim::FaultInjector &faultInjector() { return *injector_; }
    manufacturer::Manufacturer &mft() { return *manufacturer_; }
    tee::TeePlatform &teePlatform() { return *platform_; }
    /** The ACTIVE device/shell (single-device flows never notice the
     *  pool exists). */
    fpga::FpgaDevice &device() { return device(activeDevice()); }
    shell::Shell &shell() { return shell(activeDevice()); }
    /** Pool access by index. */
    fpga::FpgaDevice &device(uint32_t index)
    {
        return *slots_.at(index).device;
    }
    shell::Shell &shell(uint32_t index)
    {
        return *slots_.at(index).shell;
    }
    uint32_t deviceCount() const { return uint32_t(slots_.size()); }
    /** The device currently serving the session. */
    uint32_t activeDevice() const;
    /** Non-null only when configured malicious (active device). */
    shell::MaliciousShell *maliciousShell()
    {
        return slots_.at(activeDevice()).malicious;
    }
    shell::MaliciousShell *maliciousShell(uint32_t index)
    {
        return slots_.at(index).malicious;
    }
    SmEnclaveApp &smApp() { return *smApp_; }
    UserEnclaveApp &userApp() { return *userApp_; }
    FleetSupervisor &supervisor() { return *supervisor_; }

    /**
     * Adds a tenant user enclave with its own SM peer channel and
     * fabric session slot. @return the peer/slot id (>= 1). Call
     * userApp(peer).attachToPlatform() after the platform has booted.
     */
    uint32_t addUserSession();
    /** User enclave by peer id (0 = the session owner). */
    UserEnclaveApp &userApp(uint32_t peer);
    /** Tenant sessions added so far (excluding peer 0). */
    size_t extraUserCount() const { return extraUsers_.size(); }

    /**
     * The multi-session batch scheduler, lazily built over the
     * supervisor-guarded batched channel. Sessions registered: slot 0
     * plus every addUserSession() peer.
     */
    BatchScheduler &scheduler();
    crypto::RandomSource &rng() { return *rng_; }

    /**
     * The deterministic event engine over this testbed's clock,
     * lazily built (seeded from the testbed's rngSeed; FIFO
     * tie-breaking, so engine-driven runs replay lockstep call order
     * exactly). Event-driven drivers register their actors here.
     */
    sim::Engine &engine();

    /** The published CL artifacts (mutable so tests can tamper). */
    Bytes &storedBitstream() { return storedBitstream_; }
    ClMetadata &metadata() { return metadata_; }
    const ClLayout &layout() const { return layout_; }
    const netlist::ResourceVector &utilization() const
    {
        return utilization_;
    }
    /** Host-side (untrusted) storage of the SM's sealed journal —
     *  mutable so rollback attacks can be staged. */
    Bytes &sealedJournal() { return journalStore_; }

    /** SimHooks bound to this testbed's clock and cost model. */
    SimHooks simHooks();

    /**
     * Simulates an SM-application restart (instance reboot): the old
     * enclave is destroyed and a fresh one loaded from the same
     * image. Optionally imports a sealed device key exported by the
     * previous instance, skipping the manufacturer round trip.
     * @return true when the sealed key (if given) was accepted.
     */
    bool restartSmApp(ByteView sealedDeviceKey = ByteView());

    /**
     * Simulates an SM-enclave CRASH + restart with journal recovery:
     * a fresh enclave instance rehydrates from the host-stored sealed
     * journal (anti-rollback checked, deployed devices re-attested).
     */
    SmEnclaveApp::RecoveryReport crashAndRecoverSmApp();

    /**
     * The full failover sequence the supervisor invokes when the
     * active device is quarantined: switch the SM to `to` (retiring
     * the dead device's secrets) and re-run the entire cascaded
     * attestation against the new DeviceDNA. Exposed for tests.
     */
    FailoverRecord performFailover(uint32_t from, uint32_t to,
                                   const std::string &reason);

    /**
     * The live-migration sequence the supervisor invokes for planned
     * moves (load balancing, rolling upgrades), in order: quiesce the
     * batch scheduler (new ops park under backpressure), obtain the
     * SM's MAC'd migration ticket, commit it (tombstones the source
     * epoch's secrets), re-deploy + re-run the cascaded attestation
     * on the target, then release the parked queue. The queue is
     * released on EVERY exit path — a failed migration leaves the
     * parked ops flowing again on whichever device is active.
     * Exposed for tests.
     * @throws MigrationError when the SM refuses to issue or commit
     *         the ticket (session keeps serving on the source).
     */
    MigrationRecord performMigration(uint32_t to,
                                     const std::string &reason);

  private:
    struct DeviceSlot
    {
        std::unique_ptr<fpga::FpgaDevice> device;
        std::unique_ptr<shell::Shell> shell;
        shell::MaliciousShell *malicious = nullptr;
    };

    SmEnclaveDeps makeSmDeps();
    void rebuildSmApp();

    TestbedConfig config_;
    sim::VirtualClock clock_;
    std::unique_ptr<crypto::CtrDrbg> rng_;
    std::unique_ptr<sim::FaultInjector> injector_;
    std::unique_ptr<manufacturer::Manufacturer> manufacturer_;
    std::unique_ptr<tee::TeePlatform> platform_;
    std::vector<DeviceSlot> slots_;
    std::unique_ptr<net::Network> network_;
    std::unique_ptr<SmEnclaveApp> smApp_;
    std::unique_ptr<UserEnclaveApp> userApp_;
    /** Tenant user enclaves (index i = peer/slot i + 1). */
    std::vector<std::unique_ptr<UserEnclaveApp>> extraUsers_;
    std::unique_ptr<BatchScheduler> scheduler_;
    std::unique_ptr<FleetSupervisor> supervisor_;
    std::unique_ptr<sim::Engine> engine_;

    Bytes storedBitstream_;
    ClMetadata metadata_;
    ClLayout layout_;
    netlist::ResourceVector utilization_;
    bool clInstalled_ = false;
    Bytes journalStore_;
};

} // namespace salus::core

#endif // SALUS_SALUS_TESTBED_HPP
