/**
 * @file
 * Full-platform testbed: manufactures the hardware, provisions the
 * TEE, boots the cloud instance and wires the three network domains
 * of §6.1 (user client / cloud instance / manufacturer server). This
 * is the top of the public API — examples, integration tests and the
 * boot-time benches all drive a Testbed.
 */

#ifndef SALUS_SALUS_TESTBED_HPP
#define SALUS_SALUS_TESTBED_HPP

#include <memory>

#include "manufacturer/manufacturer.hpp"
#include "salus/cl_builder.hpp"
#include "salus/developer.hpp"
#include "salus/sm_enclave.hpp"
#include "salus/user_client.hpp"
#include "salus/user_enclave.hpp"
#include "shell/attacks.hpp"

namespace salus::core {

/** Testbed construction options. */
struct TestbedConfig
{
    fpga::DeviceModelInfo deviceModel = fpga::testModel();
    uint64_t rngSeed = 1;
    /** Use a MaliciousShell with this plan instead of an honest one. */
    bool maliciousShell = false;
    shell::AttackPlan attackPlan;
    /** Seeded deterministic fault schedule (default: fault-free). */
    sim::FaultPlan faultPlan;
    /** Retry schedule shared by the user client and the SM enclave.
     *  Default: the standard self-healing schedule (a fault-free run
     *  is trace-identical with retries on or off, since backoff is
     *  only charged after a failure). */
    net::RetryPolicy retry = net::RetryPolicy::standard();
    /** Cost model for the virtual clock (defaults: paper calibration). */
    sim::CostModel cost;
    /** The developer's user-enclave build. */
    tee::EnclaveImage userImage;

    TestbedConfig();
};

/** Endpoint names used on the testbed network. */
namespace endpoints {
inline const char *const kUserClient = "user-client";
inline const char *const kCloudHost = "cloud-host";
inline const char *const kManufacturer = "mft-server";
} // namespace endpoints

/** A complete simulated deployment. */
class Testbed
{
  public:
    explicit Testbed(TestbedConfig config = {});
    ~Testbed();

    // RPC handlers and enclave dependencies capture `this`; the
    // testbed must stay at one address for its lifetime.
    Testbed(const Testbed &) = delete;
    Testbed &operator=(const Testbed &) = delete;

    /**
     * "Development phase": integrates the accelerator with the SM
     * logic, compiles the CL, and publishes bitstream + metadata to
     * the (untrusted) cloud storage this testbed models.
     */
    void installCl(netlist::Cell accelCell,
                   std::vector<netlist::Cell> extraCells = {});

    /**
     * Installs a developer-published signed artifact instead of
     * compiling locally (the realistic IP-marketplace flow).
     * @return false when the signature or digest check fails — the
     *         artifact is then NOT installed.
     */
    bool installArtifact(const ClArtifact &artifact,
                         ByteView expectedDeveloperKey);

    /** "Deployment phase": the full cascaded attestation flow.
     *  @param customize optional hook to adjust the client's policy
     *  (e.g. MRSIGNER pinning, minimum SVN) before it runs. */
    UserClient::Outcome runDeployment(
        const std::function<void(ClientConfig &)> &customize = nullptr);

    // ---- Component access for tests, benches and examples ----------
    sim::VirtualClock &clock() { return clock_; }
    const sim::CostModel &cost() const { return config_.cost; }
    net::Network &network() { return *network_; }
    /** The shared fault fabric (always present; no-op when the plan
     *  is empty). Tests arm additional rules at runtime through it. */
    sim::FaultInjector &faultInjector() { return *injector_; }
    manufacturer::Manufacturer &mft() { return *manufacturer_; }
    tee::TeePlatform &teePlatform() { return *platform_; }
    fpga::FpgaDevice &device() { return *device_; }
    shell::Shell &shell() { return *shell_; }
    /** Non-null only when configured malicious. */
    shell::MaliciousShell *maliciousShell() { return malicious_; }
    SmEnclaveApp &smApp() { return *smApp_; }
    UserEnclaveApp &userApp() { return *userApp_; }
    crypto::RandomSource &rng() { return *rng_; }

    /** The published CL artifacts (mutable so tests can tamper). */
    Bytes &storedBitstream() { return storedBitstream_; }
    ClMetadata &metadata() { return metadata_; }
    const ClLayout &layout() const { return layout_; }
    const netlist::ResourceVector &utilization() const
    {
        return utilization_;
    }

    /** SimHooks bound to this testbed's clock and cost model. */
    SimHooks simHooks();

    /**
     * Simulates an SM-application restart (instance reboot): the old
     * enclave is destroyed and a fresh one loaded from the same
     * image. Optionally imports a sealed device key exported by the
     * previous instance, skipping the manufacturer round trip.
     * @return true when the sealed key (if given) was accepted.
     */
    bool restartSmApp(ByteView sealedDeviceKey = ByteView());

  private:
    TestbedConfig config_;
    sim::VirtualClock clock_;
    std::unique_ptr<crypto::CtrDrbg> rng_;
    std::unique_ptr<sim::FaultInjector> injector_;
    std::unique_ptr<manufacturer::Manufacturer> manufacturer_;
    std::unique_ptr<tee::TeePlatform> platform_;
    std::unique_ptr<fpga::FpgaDevice> device_;
    std::unique_ptr<shell::Shell> shell_;
    shell::MaliciousShell *malicious_ = nullptr;
    std::unique_ptr<net::Network> network_;
    std::unique_ptr<SmEnclaveApp> smApp_;
    std::unique_ptr<UserEnclaveApp> userApp_;

    Bytes storedBitstream_;
    ClMetadata metadata_;
    ClLayout layout_;
    netlist::ResourceVector utilization_;
    bool clInstalled_ = false;
};

} // namespace salus::core

#endif // SALUS_SALUS_TESTBED_HPP
