/**
 * @file
 * Multi-session batch scheduler (extension): multiplexes many user
 * sessions over the SM enclave's batched secure register channel.
 *
 * Each session owns a bounded submission queue (per-session
 * backpressure: a full queue refuses new ops instead of letting one
 * tenant starve the pool). A pump sweep drains every session's queue
 * in fair round-robin order, at most `maxBatchOps` ops per session
 * per sweep, and dispatches each slice as ONE sealed burst.
 *
 * Failover semantics are inherited from the supervisor's guarded
 * dispatch: when the dispatch function throws FailoverError, the ops
 * that were in flight complete with kBatchStatusFailedOver (a typed
 * error — never silently retried, so an op is executed at most once),
 * the remaining queued ops survive for the next sweep against the
 * failed-over device, and the error propagates to the caller.
 */

#ifndef SALUS_SALUS_SCHEDULER_HPP
#define SALUS_SALUS_SCHEDULER_HPP

#include <deque>
#include <functional>
#include <map>
#include <vector>

#include "common/errors.hpp"
#include "salus/reg_channel.hpp"

namespace salus::core {

/** Per-op status reported when a failover interrupted the burst the
 *  op was dispatched in. The op may or may not have executed on the
 *  dead device; the caller decides whether to resubmit. */
constexpr uint8_t kBatchStatusFailedOver = 0xfa;

/**
 * Thrown by a Dispatch function that temporarily cannot take the
 * burst (downstream buffer full, device saturated). The burst was NOT
 * executed: the scheduler leaves the session's queue intact and
 * retries the slice once after the other sessions' slices of the same
 * sweep complete, so a hot session's own later ops are not starved
 * for a whole sweep by one transient refusal.
 */
class DispatchBackpressure : public SalusError
{
  public:
    explicit DispatchBackpressure(const std::string &what)
        : SalusError("dispatch backpressure: " + what)
    {}
};

/** Fair round-robin dispatcher over per-session op queues. */
class BatchScheduler
{
  public:
    struct Config
    {
        /** Ops a session may hold queued before submit() refuses. */
        size_t queueCapacity = 256;
        /** Largest burst one session gets per round-robin sweep. */
        size_t maxBatchOps = 32;
    };

    enum class Submit {
        Accepted,
        Backpressure,   ///< session queue full — try again after a pump
        UnknownSession, ///< session id never added
    };

    /** Completion callback: (status, read data). */
    using Completion = std::function<void(uint8_t, uint64_t)>;
    /** Burst dispatch: (session slot, ops) -> one result per op. May
     *  throw FailoverError (supervisor-guarded path). */
    using Dispatch = std::function<std::vector<regchan::BatchResult>(
        uint32_t, const std::vector<regchan::RegOp> &)>;

    struct Stats
    {
        uint64_t submitted = 0;
        uint64_t rejectedBackpressure = 0;
        uint64_t dispatchedBatches = 0;
        uint64_t dispatchedOps = 0;
        uint64_t failedOverOps = 0;
        uint64_t dispatchBackpressure = 0; ///< slices refused downstream
        uint64_t retriedSlices = 0; ///< end-of-sweep retries attempted
        size_t maxDepth = 0; ///< deepest any session queue ever got
    };

    explicit BatchScheduler(Dispatch dispatch);
    BatchScheduler(Dispatch dispatch, Config config);

    /** Registers a session (fabric slot). Idempotent. */
    void addSession(uint32_t session);

    /** Enqueues one op; `done` fires when its burst completes. */
    Submit submit(uint32_t session, const regchan::RegOp &op,
                  Completion done);

    /**
     * One fair sweep: every session with queued ops gets exactly one
     * burst of at most maxBatchOps. The starting session rotates
     * between sweeps so no session wins every tie. A slice refused
     * with DispatchBackpressure keeps its queue intact and is retried
     * exactly once after every other session's slice completes.
     * Returns 0 immediately while the scheduler is quiesced.
     * @return ops completed (including failed-over ones).
     * @throws FailoverError after completing in-flight ops with
     *         kBatchStatusFailedOver; queued ops survive.
     */
    size_t pumpOnce();

    /** Pumps until every queue is empty, or until a full sweep makes
     *  no progress (quiesced, or every session backpressured) — never
     *  spins. @return ops completed. */
    size_t drain();

    // ---- Migration quiesce (fleet extension) ------------------------
    /**
     * Parks the scheduler for a live migration: pumpOnce/drain stop
     * dispatching (no new bursts reach the old device) while submit()
     * keeps accepting into the bounded queues, so callers just see
     * ordinary backpressure once the queues fill.
     * @return ops left parked in the queues.
     */
    size_t quiesce();
    /** Releases a quiesced scheduler; parked ops flow on the next
     *  pump (against the migrated-to device). */
    void release();
    bool parked() const { return parked_; }

    size_t queueDepth(uint32_t session) const;
    size_t totalQueued() const;
    const Stats &stats() const { return stats_; }
    /** Ops dispatched for one session (fairness assertions). */
    uint64_t dispatchedFor(uint32_t session) const;

  private:
    struct Pending
    {
        regchan::RegOp op;
        Completion done;
    };
    struct Session
    {
        std::deque<Pending> queue;
        uint64_t dispatched = 0;
    };

    /** Dispatches one slice for `id`. @return ops completed.
     *  FailoverError completes in-flight ops and propagates;
     *  DispatchBackpressure leaves the queue intact and propagates. */
    size_t dispatchSlice(uint32_t id, Session &s);

    Dispatch dispatch_;
    Config config_;
    /** Ordered by session id; round-robin rotates over this map. */
    std::map<uint32_t, Session> sessions_;
    /** Session id the next sweep starts at (fair tie-breaking). */
    uint32_t cursor_ = 0;
    bool parked_ = false; ///< quiesced for a live migration
    Stats stats_;
};

} // namespace salus::core

#endif // SALUS_SALUS_SCHEDULER_HPP
