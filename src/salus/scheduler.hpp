/**
 * @file
 * Multi-session batch scheduler (extension): multiplexes many user
 * sessions over the SM enclave's batched secure register channel.
 *
 * Each session owns a bounded submission queue (per-session
 * backpressure: a full queue refuses new ops instead of letting one
 * tenant starve the pool). A pump sweep drains every session's queue
 * in fair round-robin order, at most `maxBatchOps` ops per session
 * per sweep, and dispatches each slice as ONE sealed burst.
 *
 * Failover semantics are inherited from the supervisor's guarded
 * dispatch: when the dispatch function throws FailoverError, the ops
 * that were in flight complete with kBatchStatusFailedOver (a typed
 * error — never silently retried, so an op is executed at most once),
 * the remaining queued ops survive for the next sweep against the
 * failed-over device, and the error propagates to the caller.
 */

#ifndef SALUS_SALUS_SCHEDULER_HPP
#define SALUS_SALUS_SCHEDULER_HPP

#include <deque>
#include <functional>
#include <map>
#include <vector>

#include "salus/reg_channel.hpp"

namespace salus::core {

/** Per-op status reported when a failover interrupted the burst the
 *  op was dispatched in. The op may or may not have executed on the
 *  dead device; the caller decides whether to resubmit. */
constexpr uint8_t kBatchStatusFailedOver = 0xfa;

/** Fair round-robin dispatcher over per-session op queues. */
class BatchScheduler
{
  public:
    struct Config
    {
        /** Ops a session may hold queued before submit() refuses. */
        size_t queueCapacity = 256;
        /** Largest burst one session gets per round-robin sweep. */
        size_t maxBatchOps = 32;
    };

    enum class Submit {
        Accepted,
        Backpressure,   ///< session queue full — try again after a pump
        UnknownSession, ///< session id never added
    };

    /** Completion callback: (status, read data). */
    using Completion = std::function<void(uint8_t, uint64_t)>;
    /** Burst dispatch: (session slot, ops) -> one result per op. May
     *  throw FailoverError (supervisor-guarded path). */
    using Dispatch = std::function<std::vector<regchan::BatchResult>(
        uint32_t, const std::vector<regchan::RegOp> &)>;

    struct Stats
    {
        uint64_t submitted = 0;
        uint64_t rejectedBackpressure = 0;
        uint64_t dispatchedBatches = 0;
        uint64_t dispatchedOps = 0;
        uint64_t failedOverOps = 0;
        size_t maxDepth = 0; ///< deepest any session queue ever got
    };

    explicit BatchScheduler(Dispatch dispatch);
    BatchScheduler(Dispatch dispatch, Config config);

    /** Registers a session (fabric slot). Idempotent. */
    void addSession(uint32_t session);

    /** Enqueues one op; `done` fires when its burst completes. */
    Submit submit(uint32_t session, const regchan::RegOp &op,
                  Completion done);

    /**
     * One fair sweep: every session with queued ops gets exactly one
     * burst of at most maxBatchOps. The starting session rotates
     * between sweeps so no session wins every tie.
     * @return ops completed (including failed-over ones).
     * @throws FailoverError after completing in-flight ops with
     *         kBatchStatusFailedOver; queued ops survive.
     */
    size_t pumpOnce();

    /** Pumps until every queue is empty. @return ops completed. */
    size_t drain();

    size_t queueDepth(uint32_t session) const;
    size_t totalQueued() const;
    const Stats &stats() const { return stats_; }
    /** Ops dispatched for one session (fairness assertions). */
    uint64_t dispatchedFor(uint32_t session) const;

  private:
    struct Pending
    {
        regchan::RegOp op;
        Completion done;
    };
    struct Session
    {
        std::deque<Pending> queue;
        uint64_t dispatched = 0;
    };

    Dispatch dispatch_;
    Config config_;
    /** Ordered by session id; round-robin rotates over this map. */
    std::map<uint32_t, Session> sessions_;
    /** Session id the next sweep starts at (fair tie-breaking). */
    uint32_t cursor_ = 0;
    Stats stats_;
};

} // namespace salus::core

#endif // SALUS_SALUS_SCHEDULER_HPP
