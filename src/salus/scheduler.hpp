/**
 * @file
 * Multi-session batch scheduler (extension): multiplexes many user
 * sessions over the SM enclave's batched secure register channel.
 *
 * Each session owns a bounded submission queue (per-session
 * backpressure: a full queue refuses new ops instead of letting one
 * tenant starve the pool) and a WEIGHT. A pump sweep drains every
 * backlogged session in weighted deficit-round-robin order: per
 * sweep, session i earns a quantum of `weight_i * maxBatchOps` op
 * credits, spends them on one burst (capped by the wire-format burst
 * limit), and carries unspent credit over ONLY while the burst cap —
 * not a short queue — cut its service. With every weight at 1 the
 * sweep is bit-for-bit the original rotating round-robin (the
 * regression tests pin this), and the starvation bound holds by
 * construction: any backlogged session is served every sweep, far
 * inside the contractual W_total/w_i sweeps the tests assert.
 *
 * Failover semantics are inherited from the supervisor's guarded
 * dispatch: when the dispatch function throws FailoverError, the ops
 * that were in flight complete with kBatchStatusFailedOver (a typed
 * error — never silently retried, so an op is executed at most once),
 * the remaining queued ops survive for the next sweep against the
 * failed-over device, and the error propagates to the caller.
 */

#ifndef SALUS_SALUS_SCHEDULER_HPP
#define SALUS_SALUS_SCHEDULER_HPP

#include <deque>
#include <functional>
#include <map>
#include <vector>

#include "common/errors.hpp"
#include "salus/dma_channel.hpp"
#include "salus/reg_channel.hpp"
#include "sim/clock.hpp"

namespace salus::core {

/** Per-op status reported when a failover interrupted the burst the
 *  op was dispatched in. The op may or may not have executed on the
 *  dead device; the caller decides whether to resubmit. */
constexpr uint8_t kBatchStatusFailedOver = 0xfa;

/** Largest weight a session may carry (keeps one tenant's quantum
 *  from dwarfing the sweep and the deficit arithmetic bounded). */
constexpr uint32_t kMaxSessionWeight = 64;

/**
 * Thrown by a Dispatch function that temporarily cannot take the
 * burst (downstream buffer full, device saturated). The burst was NOT
 * executed: the scheduler leaves the session's queue intact and
 * retries the slice once after the other sessions' slices of the same
 * sweep complete, so a hot session's own later ops are not starved
 * for a whole sweep by one transient refusal.
 */
class DispatchBackpressure : public SalusError
{
  public:
    explicit DispatchBackpressure(const std::string &what)
        : SalusError("dispatch backpressure: " + what)
    {}
};

/** Weighted deficit-round-robin dispatcher over per-session queues. */
class BatchScheduler
{
  public:
    struct Config
    {
        /** Ops a session may hold queued before submit() refuses. */
        size_t queueCapacity = 256;
        /** Bulk DMA jobs a session may hold queued before submitDma()
         *  refuses (each job can be megabytes, so the bound is much
         *  tighter than the register-op queue's). */
        size_t dmaQueueCapacity = 8;
        /** Op credits one WEIGHT UNIT earns per sweep (so a session's
         *  per-sweep quantum is weight * maxBatchOps). */
        size_t maxBatchOps = 32;
        /** Optional virtual clock; when set, per-session slice
         *  latency is stamped into SessionStats (QoS benches). */
        sim::VirtualClock *clock = nullptr;
    };

    enum class Submit {
        Accepted,
        Backpressure,   ///< session queue full — try again after a pump
        UnknownSession, ///< session id never added
    };

    /** Completion callback: (status, read data). */
    using Completion = std::function<void(uint8_t, uint64_t)>;
    /** Burst dispatch: (session slot, ops) -> one result per op. May
     *  throw FailoverError (supervisor-guarded path). */
    using Dispatch = std::function<std::vector<regchan::BatchResult>(
        uint32_t, const std::vector<regchan::RegOp> &)>;

    /** One bulk transfer through the secure DMA plane. */
    struct DmaJob
    {
        uint64_t addr = 0; ///< device-DRAM destination
        Bytes data;        ///< payload to move
        size_t windowSize = 8;
        std::function<void(const dmachan::DmaTransferReport &)> done;
    };
    /** DMA dispatch: (session slot, job) -> transfer report. May throw
     *  FailoverError (supervisor-guarded path). */
    using DmaDispatch =
        std::function<dmachan::DmaTransferReport(uint32_t,
                                                 const DmaJob &)>;

    struct Stats
    {
        uint64_t submitted = 0;
        uint64_t rejectedBackpressure = 0;
        uint64_t dispatchedBatches = 0;
        uint64_t dispatchedOps = 0;
        uint64_t failedOverOps = 0;
        uint64_t dispatchBackpressure = 0; ///< slices refused downstream
        uint64_t retriedSlices = 0; ///< end-of-sweep retries attempted
        size_t maxDepth = 0; ///< deepest any session queue ever got
        uint64_t dmaJobs = 0;  ///< DMA transfers dispatched
        uint64_t dmaBytes = 0; ///< payload bytes moved over DMA
    };

    /** Per-session counters (noisy-neighbour visibility: which tenant
     *  is eating the pressure, not just that someone is). Mirrored
     *  into MetricsRegistry as `scheduler.session<id>.<counter>`. */
    struct SessionStats
    {
        uint64_t submitted = 0;
        uint64_t rejectedBackpressure = 0; ///< submit() refusals
        uint64_t dispatchedOps = 0;
        uint64_t dispatchedBatches = 0;
        uint64_t failedOverOps = 0;
        uint64_t dispatchBackpressure = 0; ///< slices refused downstream
        uint64_t retriedSlices = 0; ///< end-of-sweep retries attempted
        size_t maxDepth = 0;
        /** Consecutive sweeps this session has sat backlogged without
         *  receiving service (live value; reset on service). */
        uint64_t sweepsWaiting = 0;
        /** Worst backlogged-sweeps-before-service ever observed; 1 =
         *  always served in the same sweep it waited in. This is the
         *  starvation-bound witness: contractually bounded by
         *  ceil(W_total / w_i) under any submit pattern. */
        uint64_t maxSweepsWaited = 0;
        /** Virtual duration of the last dispatched slice (needs
         *  Config::clock; 0 otherwise). */
        uint64_t sliceNanosLast = 0;
        uint64_t dmaJobs = 0;  ///< DMA transfers dispatched
        uint64_t dmaBytes = 0; ///< payload bytes moved over DMA
    };

    explicit BatchScheduler(Dispatch dispatch);
    BatchScheduler(Dispatch dispatch, Config config);

    /** Registers a session (fabric slot) with a DRR weight. Idempotent
     *  on the session id; re-adding never resets queue or stats. */
    void addSession(uint32_t session, uint32_t weight = 1);

    /** Adjusts a session's weight (clamped to [1, kMaxSessionWeight]);
     *  takes effect at the next sweep's credit grant. */
    void setWeight(uint32_t session, uint32_t weight);
    uint32_t weightOf(uint32_t session) const;
    /** Sum of all registered sessions' weights (W_total). */
    uint32_t totalWeight() const;

    /** Enqueues one op; `done` fires when its burst completes. */
    Submit submit(uint32_t session, const regchan::RegOp &op,
                  Completion done);

    /** Installs the DMA dispatch path; submitDma() refuses with
     *  Backpressure until one is set. */
    void setDmaDispatch(DmaDispatch dispatch);
    /** Enqueues one bulk DMA job; `job.done` fires with the transfer
     *  report when its sweep dispatches it. */
    Submit submitDma(uint32_t session, DmaJob job);

    /**
     * One weighted sweep: every backlogged session earns its quantum
     * (weight * maxBatchOps op credits, plus any burst-cap carry) and
     * gets one burst spending them. The starting session rotates
     * between sweeps so no session wins every tie. A slice refused
     * with DispatchBackpressure keeps its queue intact and is retried
     * exactly once after every other session's slice completes.
     *
     * After the register slices, every backlogged session dispatches
     * at most ONE queued DMA job — bulk transfers ride the same sweep
     * without starving register traffic (which always goes first) and
     * without being starved (every sweep services one job per
     * session).
     * Returns 0 immediately while the scheduler is quiesced.
     * @return ops completed (including failed-over ones).
     * @throws FailoverError after completing in-flight ops with
     *         kBatchStatusFailedOver; queued ops survive.
     */
    size_t pumpOnce();

    /** Pumps until every queue is empty, or until a full sweep makes
     *  no progress (quiesced, or every session backpressured) — never
     *  spins. @return ops completed. */
    size_t drain();

    // ---- Migration quiesce (fleet extension) ------------------------
    /**
     * Parks the scheduler for a live migration: pumpOnce/drain stop
     * dispatching (no new bursts reach the old device) while submit()
     * keeps accepting into the bounded queues, so callers just see
     * ordinary backpressure once the queues fill.
     * @return ops left parked in the queues.
     */
    size_t quiesce();
    /** Releases a quiesced scheduler; parked ops flow on the next
     *  pump (against the migrated-to device). */
    void release();
    bool parked() const { return parked_; }

    size_t queueDepth(uint32_t session) const;
    size_t totalQueued() const;
    const Stats &stats() const { return stats_; }
    /** Per-session counters (empty defaults for unknown sessions). */
    const SessionStats &sessionStats(uint32_t session) const;
    /** Ops dispatched for one session (fairness assertions). */
    uint64_t dispatchedFor(uint32_t session) const;

  private:
    struct Pending
    {
        regchan::RegOp op;
        Completion done;
    };
    struct Session
    {
        std::deque<Pending> queue;
        std::deque<DmaJob> dmaQueue;
        uint32_t weight = 1;
        /** DRR op credits left from earlier sweeps (nonzero only when
         *  the burst cap — not queue shortage — cut a slice short). */
        uint64_t deficit = 0;
        SessionStats stats;
    };

    /** Dispatches one slice for `id`. @return ops completed.
     *  FailoverError completes in-flight ops and propagates;
     *  DispatchBackpressure leaves the queue intact and propagates. */
    size_t dispatchSlice(uint32_t id, Session &s);
    /** Dispatches one queued DMA job for `id`. @return jobs (0/1).
     *  FailoverError completes the job with a failed-over report and
     *  propagates. */
    size_t dispatchDmaJob(uint32_t id, Session &s);

    /** Mirrors a per-session counter into the metrics registry. */
    static void countSession(uint32_t id, const char *counter,
                             uint64_t delta = 1);

    Dispatch dispatch_;
    DmaDispatch dmaDispatch_;
    Config config_;
    /** Ordered by session id; the sweep rotates over this map. */
    std::map<uint32_t, Session> sessions_;
    /** Session id the next sweep starts at (fair tie-breaking). */
    uint32_t cursor_ = 0;
    bool parked_ = false; ///< quiesced for a live migration
    Stats stats_;
};

} // namespace salus::core

#endif // SALUS_SALUS_SCHEDULER_HPP
