#include "salus/scenario.hpp"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "fpga/ip.hpp"
#include "obs/trace.hpp"
#include "salus/actors.hpp"
#include "salus/dma_channel.hpp"
#include "sim/engine.hpp"

namespace salus::core {

namespace {

// ---- Parsing helpers (never let std:: parse exceptions escape) -----

std::string
trim(const std::string &s)
{
    size_t b = s.find_first_not_of(" \t\r");
    if (b == std::string::npos)
        return "";
    size_t e = s.find_last_not_of(" \t\r");
    return s.substr(b, e - b + 1);
}

uint64_t
parseU64(const std::string &key, const std::string &value)
{
    if (value.empty() || value.size() > 18)
        throw ScenarioError("bad integer for '" + key + "': '" + value +
                            "'");
    uint64_t out = 0;
    for (char c : value) {
        if (c < '0' || c > '9')
            throw ScenarioError("bad integer for '" + key + "': '" +
                                value + "'");
        out = out * 10 + uint64_t(c - '0');
    }
    return out;
}

uint32_t
parseU32(const std::string &key, const std::string &value)
{
    uint64_t v = parseU64(key, value);
    if (v > ~uint32_t(0))
        throw ScenarioError("value for '" + key + "' out of range");
    return uint32_t(v);
}

bool
parseBool(const std::string &key, const std::string &value)
{
    if (value == "1" || value == "true" || value == "yes")
        return true;
    if (value == "0" || value == "false" || value == "no")
        return false;
    throw ScenarioError("bad boolean for '" + key + "': '" + value +
                        "'");
}

double
parseProb(const std::string &key, const std::string &value)
{
    if (value.empty() || value.size() > 32)
        throw ScenarioError("bad probability for '" + key + "'");
    const char *begin = value.c_str();
    char *end = nullptr;
    double v = std::strtod(begin, &end);
    if (end != begin + value.size() || !(v >= 0.0) || !(v <= 1.0))
        throw ScenarioError("probability '" + key +
                            "' must be in [0,1], got '" + value + "'");
    return v;
}

// ---- Section appliers ----------------------------------------------

void
applyScenarioKey(Scenario &sc, const std::string &key,
                 const std::string &value)
{
    if (key == "name")
        sc.name = value;
    else if (key == "seed")
        sc.seed = parseU64(key, value);
    else if (key == "devices")
        sc.devices = parseU32(key, value);
    else if (key == "sweeps")
        sc.sweeps = parseU32(key, value);
    else if (key == "poll_every")
        sc.pollEvery = parseU32(key, value);
    else if (key == "malicious_shell")
        sc.maliciousShell = parseBool(key, value);
    else if (key == "forge_heartbeats")
        sc.forgeHeartbeats = parseBool(key, value);
    else
        throw ScenarioError("unknown [scenario] key '" + key + "'");
}

void
applyBrokerKey(Scenario &sc, const std::string &key,
               const std::string &value)
{
    if (key == "max_total_queued_ops")
        sc.broker.maxTotalQueuedOps = parseU64(key, value);
    else if (key == "shed_low_water")
        sc.broker.shedLowWater = parseU64(key, value);
    else if (key == "max_total_sessions")
        sc.broker.maxTotalSessions = parseU32(key, value);
    else
        throw ScenarioError("unknown [broker] key '" + key + "'");
}

void
applyTenantKey(ScenarioTenant &t, const std::string &key,
               const std::string &value)
{
    if (key == "weight")
        t.policy.weight = parseU32(key, value);
    else if (key == "max_sessions")
        t.policy.maxSessions = parseU32(key, value);
    else if (key == "max_queued_ops")
        t.policy.maxQueuedOps = parseU64(key, value);
    else if (key == "rate_per_sec")
        t.policy.ratePerSec = parseU64(key, value);
    else if (key == "burst")
        t.policy.burst = parseU64(key, value);
    else if (key == "sessions")
        t.sessions = parseU32(key, value);
    else if (key == "pattern") {
        if (value != "flood" && value != "burst" && value != "trickle" &&
            value != "idle")
            throw ScenarioError("unknown tenant pattern '" + value + "'");
        t.pattern = value;
    } else if (key == "ops_per_sweep")
        t.opsPerSweep = parseU32(key, value);
    else if (key == "start_sweep")
        t.startSweep = parseU32(key, value);
    else if (key == "stop_sweep")
        t.stopSweep = parseU32(key, value);
    else if (key == "burst_on")
        t.burstOn = parseU32(key, value);
    else if (key == "burst_off")
        t.burstOff = parseU32(key, value);
    else
        throw ScenarioError("unknown [tenant] key '" + key + "'");
}

void
applyFaultKey(ScenarioFault &f, const std::string &key,
              const std::string &value)
{
    if (key == "kind")
        f.kind = value;
    else if (key == "probability")
        f.probability = parseProb(key, value);
    else if (key == "from")
        f.from = value;
    else if (key == "to")
        f.to = value;
    else if (key == "method")
        f.method = value;
    else if (key == "device")
        f.device = parseU32(key, value);
    else if (key == "partition")
        f.partition = parseU32(key, value);
    else if (key == "bit")
        f.bit = parseU64(key, value);
    else if (key == "delay_us")
        f.delayUs = parseU64(key, value);
    else if (key == "at_ms")
        f.atMs = parseU64(key, value);
    else if (key == "until_ms")
        f.untilMs = parseU64(key, value);
    else if (key == "times")
        f.times = parseU32(key, value);
    else
        throw ScenarioError("unknown [fault] key '" + key + "'");
}

void
applyActionKey(ScenarioAction &a, const std::string &key,
               const std::string &value)
{
    if (key == "kind") {
        if (value != "rekey" && value != "replay" && value != "dma")
            throw ScenarioError("unknown action kind '" + value + "'");
        a.kind = value;
    } else if (key == "at_sweep")
        a.atSweep = parseU32(key, value);
    else if (key == "every_sweeps")
        a.everySweeps = parseU32(key, value);
    else if (key == "bytes")
        a.bytes = parseU64(key, value);
    else if (key == "window")
        a.window = parseU32(key, value);
    else
        throw ScenarioError("unknown [action] key '" + key + "'");
}

void
applyExpectKey(ScenarioExpect &e, const std::string &key,
               const std::string &value)
{
    if (key == "completed_min")
        e.completedMin = parseU64(key, value);
    else if (key == "quota_rejected_min")
        e.quotaRejectedMin = parseU64(key, value);
    else if (key == "rate_rejected_min")
        e.rateRejectedMin = parseU64(key, value);
    else if (key == "shed_rejected_min")
        e.shedRejectedMin = parseU64(key, value);
    else if (key == "seus_min")
        e.seusMin = parseU64(key, value);
    else if (key == "recovered_from_shed")
        e.recoveredFromShed = parseBool(key, value);
    else if (key == "no_starvation")
        e.noStarvation = parseBool(key, value);
    else if (key == "failovers_max")
        e.failoversMax = parseU64(key, value);
    else if (key == "dma_bytes_min")
        e.dmaBytesMin = parseU64(key, value);
    else
        throw ScenarioError("unknown [expect] key '" + key + "'");
}

void
validate(const Scenario &sc)
{
    if (sc.devices < 1 || sc.devices > 16)
        throw ScenarioError("devices must be in [1,16]");
    if (sc.sweeps < 1 || sc.sweeps > 100000)
        throw ScenarioError("sweeps must be in [1,100000]");
    if (sc.tenants.empty())
        throw ScenarioError("at least one [tenant <name>] required");
    if (sc.tenants.size() > 16)
        throw ScenarioError("at most 16 tenants");
    for (const ScenarioTenant &t : sc.tenants) {
        if (t.sessions < 1 || t.sessions > 8)
            throw ScenarioError("tenant '" + t.name +
                                "': sessions must be in [1,8]");
        if (t.opsPerSweep > 4096)
            throw ScenarioError("tenant '" + t.name +
                                "': ops_per_sweep must be <= 4096");
        if (t.pattern == "burst" && t.burstOn == 0)
            throw ScenarioError("tenant '" + t.name +
                                "': burst_on must be >= 1");
    }
    for (const ScenarioFault &f : sc.faults)
        f.toRule(); // validates the kind and parameters
    for (const ScenarioAction &a : sc.actions) {
        if (a.kind.empty())
            throw ScenarioError("[action] missing 'kind'");
        if (a.kind == "replay" && !sc.maliciousShell)
            throw ScenarioError(
                "replay action needs malicious_shell = 1");
        if (a.kind == "dma") {
            if (a.bytes < 1 || a.bytes > (uint64_t(1) << 20))
                throw ScenarioError(
                    "dma action: bytes must be in [1, 1048576]");
            if (a.window < 1 || a.window > dmachan::kDmaMaxWindow)
                throw ScenarioError("dma action: window must be in [1," +
                                    std::to_string(
                                        dmachan::kDmaMaxWindow) +
                                    "]");
        }
    }
    if (sc.broker.maxTotalQueuedOps < 1)
        throw ScenarioError("max_total_queued_ops must be >= 1");
    if (sc.broker.shedLowWater >= sc.broker.maxTotalQueuedOps)
        throw ScenarioError(
            "shed_low_water must be below max_total_queued_ops");
}

netlist::Cell
scenarioAccel()
{
    netlist::Cell accel;
    accel.path = "engine";
    accel.kind = netlist::CellKind::Logic;
    accel.behaviorId = fpga::kIpLoopback;
    accel.resources = {10, 10, 0, 0};
    return accel;
}

bool
tenantActive(const ScenarioTenant &t, uint32_t sweep)
{
    if (sweep < t.startSweep || sweep >= t.stopSweep)
        return false;
    if (t.pattern == "idle")
        return false;
    if (t.pattern == "burst") {
        uint32_t cycle = t.burstOn + t.burstOff;
        if (cycle == 0)
            return true;
        return (sweep - t.startSweep) % cycle < t.burstOn;
    }
    return true;
}

} // namespace

sim::FaultRule
ScenarioFault::toRule() const
{
    sim::FaultRule rule;
    if (kind == "drop_rpc")
        rule = sim::FaultRule::dropRpc(probability);
    else if (kind == "corrupt_rpc")
        rule = sim::FaultRule::corruptRpc(probability);
    else if (kind == "duplicate_rpc")
        rule = sim::FaultRule::duplicateRpc(probability);
    else if (kind == "reorder_rpc")
        rule = sim::FaultRule::reorderRpc(probability);
    else if (kind == "delay_rpc")
        rule = sim::FaultRule::delayRpc(probability,
                                        sim::Nanos(delayUs) * sim::kUs);
    else if (kind == "reg_fault")
        rule = sim::FaultRule::regFault(probability);
    else if (kind == "bitstream_load_fail")
        rule = sim::FaultRule::bitstreamLoadFail(times ? times : 1);
    else if (kind == "seu")
        rule = sim::FaultRule::seu(partition, bit,
                                   sim::Nanos(atMs) * sim::kMs);
    else if (kind == "device_dead") {
        if (device == sim::kAnyDevice)
            throw ScenarioError("device_dead needs an explicit device");
        rule = sim::FaultRule::deviceDead(device,
                                          sim::Nanos(atMs) * sim::kMs);
    } else if (kind == "heartbeat_loss") {
        if (device == sim::kAnyDevice)
            throw ScenarioError(
                "heartbeat_loss needs an explicit device");
        rule = sim::FaultRule::heartbeatLoss(device, probability);
    } else if (kind == "dma_drop")
        rule = sim::FaultRule::dropDma(probability);
    else if (kind == "dma_corrupt")
        rule = sim::FaultRule::corruptDma(probability);
    else if (kind == "dma_reorder")
        rule = sim::FaultRule::reorderDma(probability);
    else
        throw ScenarioError("unknown fault kind '" + kind + "'");

    if (!from.empty() || !to.empty() || !method.empty())
        rule.on(from, to, method);
    if (device != sim::kAnyDevice && kind != "device_dead" &&
        kind != "heartbeat_loss")
        rule.onDevice(device);
    if (atMs || untilMs)
        rule.during(sim::Nanos(atMs) * sim::kMs,
                    untilMs ? sim::Nanos(untilMs) * sim::kMs
                            : ~sim::Nanos(0));
    if (times)
        rule.times(times);
    return rule;
}

Scenario
parseScenario(const std::string &text)
{
    if (text.size() > 1 << 20)
        throw ScenarioError("scenario file too large");

    Scenario sc;
    // Section state: which section the cursor is in, and the
    // in-flight tenant/fault/action being filled.
    enum class Section {
        None,
        Scenario,
        Broker,
        Tenant,
        Fault,
        Action,
        Expect
    };
    Section section = Section::None;
    ScenarioTenant tenant;
    ScenarioFault fault;
    ScenarioAction action;
    bool sawScenario = false;

    auto flush = [&](Section closing) {
        if (closing == Section::Tenant)
            sc.tenants.push_back(tenant);
        else if (closing == Section::Fault) {
            if (fault.kind.empty())
                throw ScenarioError("[fault] missing 'kind'");
            sc.faults.push_back(fault);
        } else if (closing == Section::Action) {
            if (action.kind.empty())
                throw ScenarioError("[action] missing 'kind'");
            sc.actions.push_back(action);
        }
    };

    std::istringstream in(text);
    std::string raw;
    size_t lineNo = 0;
    while (std::getline(in, raw)) {
        ++lineNo;
        std::string line = raw;
        size_t hash = line.find('#');
        if (hash != std::string::npos)
            line = line.substr(0, hash);
        line = trim(line);
        if (line.empty())
            continue;

        if (line.front() == '[') {
            if (line.back() != ']')
                throw ScenarioError("line " + std::to_string(lineNo) +
                                    ": unterminated section header");
            std::string header = trim(line.substr(1, line.size() - 2));
            flush(section);
            if (header == "scenario") {
                section = Section::Scenario;
                sawScenario = true;
            } else if (header == "broker")
                section = Section::Broker;
            else if (header.rfind("tenant ", 0) == 0) {
                section = Section::Tenant;
                tenant = ScenarioTenant();
                tenant.name = trim(header.substr(7));
                if (tenant.name.empty())
                    throw ScenarioError("line " + std::to_string(lineNo) +
                                        ": tenant needs a name");
                for (const ScenarioTenant &t : sc.tenants)
                    if (t.name == tenant.name)
                        throw ScenarioError("duplicate tenant '" +
                                            tenant.name + "'");
            } else if (header == "fault") {
                section = Section::Fault;
                fault = ScenarioFault();
            } else if (header == "action") {
                section = Section::Action;
                action = ScenarioAction();
            } else if (header == "expect")
                section = Section::Expect;
            else
                throw ScenarioError("line " + std::to_string(lineNo) +
                                    ": unknown section [" + header + "]");
            continue;
        }

        size_t eq = line.find('=');
        if (eq == std::string::npos)
            throw ScenarioError("line " + std::to_string(lineNo) +
                                ": expected 'key = value'");
        std::string key = trim(line.substr(0, eq));
        std::string value = trim(line.substr(eq + 1));
        if (key.empty())
            throw ScenarioError("line " + std::to_string(lineNo) +
                                ": empty key");

        try {
            switch (section) {
              case Section::None:
                throw ScenarioError("key before any section header");
              case Section::Scenario:
                applyScenarioKey(sc, key, value);
                break;
              case Section::Broker:
                applyBrokerKey(sc, key, value);
                break;
              case Section::Tenant:
                applyTenantKey(tenant, key, value);
                break;
              case Section::Fault:
                applyFaultKey(fault, key, value);
                break;
              case Section::Action:
                applyActionKey(action, key, value);
                break;
              case Section::Expect:
                applyExpectKey(sc.expect, key, value);
                break;
            }
        } catch (const ScenarioError &e) {
            throw ScenarioError("line " + std::to_string(lineNo) + ": " +
                                e.what());
        }
    }
    flush(section);

    if (!sawScenario)
        throw ScenarioError("missing [scenario] section");
    validate(sc);
    return sc;
}

Scenario
parseScenarioFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw ScenarioError("cannot open '" + path + "'");
    std::ostringstream buf;
    buf << in.rdbuf();
    try {
        return parseScenario(buf.str());
    } catch (const ScenarioError &e) {
        throw ScenarioError(path + ": " + e.what());
    }
}

namespace {

/**
 * The per-sweep steps of a campaign, shared VERBATIM between the
 * lockstep loop and the event-engine port so the two drivers cannot
 * drift. Call order per sweep is actions -> submissions -> pump ->
 * poll (when due); drain + harvest run after the last sweep.
 */
struct ScenarioExec
{
    const Scenario &sc;
    Testbed &tb;
    Broker &broker;
    ScenarioOutcome &out;
    std::vector<uint32_t> tenantIds;
    std::vector<std::vector<uint32_t>> tenantSessions;

    /** Tenants + sessions, in file order (determinism: ids are dense
     *  and the sweep loop walks this fixed layout). */
    void openTenants()
    {
        for (const ScenarioTenant &t : sc.tenants) {
            uint32_t id = broker.registerTenant(t.name, t.policy);
            tenantIds.push_back(id);
            std::vector<uint32_t> sessions;
            for (uint32_t i = 0; i < t.sessions; ++i) {
                try {
                    sessions.push_back(broker.openSession(id));
                } catch (const PolicyError &) {
                    // Session quota walls are a legitimate part of
                    // a campaign; the tenant runs with fewer.
                    break;
                }
            }
            tenantSessions.push_back(std::move(sessions));
        }
    }

    void actions(uint32_t sweep)
    {
        for (const ScenarioAction &a : sc.actions) {
            if (!a.firesAt(sweep))
                continue;
            if (a.kind == "rekey")
                tb.smApp().rekeySession();
            else if (a.kind == "replay" && tb.maliciousShell())
                tb.maliciousShell()->replayRecordedSmWrites();
            else if (a.kind == "dma") {
                // Bulk transfer through the secure DMA lane on
                // the first open session; the job rides the
                // scheduler's sweep, so faults armed on the
                // memory channel exercise the window protocol.
                uint32_t slot = 0;
                bool haveSlot = false;
                for (const auto &sessions : tenantSessions)
                    if (!sessions.empty()) {
                        slot = sessions.front();
                        haveSlot = true;
                        break;
                    }
                if (!haveSlot)
                    continue;
                BatchScheduler::DmaJob job;
                job.addr = 0x10000;
                job.windowSize = a.window;
                job.data.resize(a.bytes);
                for (size_t i = 0; i < job.data.size(); ++i)
                    job.data[i] = uint8_t(sweep * 131 + i * 7 + 5);
                ScenarioOutcome &res = out;
                job.done =
                    [&res](const dmachan::DmaTransferReport &report) {
                        ++res.dmaJobs;
                        if (report.status == 0)
                            res.dmaBytes += report.bytes;
                    };
                tb.scheduler().submitDma(slot, std::move(job));
            }
        }
    }

    void submissions(uint32_t sweep)
    {
        for (size_t ti = 0; ti < sc.tenants.size(); ++ti) {
            const ScenarioTenant &t = sc.tenants[ti];
            const std::vector<uint32_t> &sessions = tenantSessions[ti];
            if (sessions.empty() || !tenantActive(t, sweep))
                continue;
            uint32_t want =
                t.pattern == "trickle"
                    ? std::max<uint32_t>(1, t.opsPerSweep / 4)
                    : t.opsPerSweep;
            for (uint32_t i = 0; i < want; ++i) {
                regchan::RegOp op;
                op.isWrite = true;
                op.addr = uint32_t(8 * ti);
                op.data = (uint64_t(sweep) << 16) | i;
                try {
                    broker.submit(tenantIds[ti],
                                  sessions[i % sessions.size()], op);
                } catch (const Overloaded &) {
                    break; // shed: the whole sweep is refused
                } catch (const RateLimited &) {
                    break; // bucket dry until time passes
                } catch (const QuotaExceeded &) {
                    // Per-session wall; other sessions may
                    // still have room.
                }
            }
        }
    }

    size_t pump()
    {
        try {
            size_t done = broker.pump();
            out.completed += done;
            return done;
        } catch (const FailoverError &) {
            ++out.failovers;
            return 0;
        }
    }

    bool pollDue(uint32_t sweep) const
    {
        return sc.pollEvery && (sweep + 1) % sc.pollEvery == 0;
    }

    /** Drain (failover-tolerant, bounded). */
    void drain()
    {
        for (int attempt = 0; attempt < 4; ++attempt) {
            try {
                out.completed += broker.drainAll();
                break;
            } catch (const FailoverError &) {
                ++out.failovers;
            }
        }
    }

    void harvest()
    {
        uint64_t totalW = tb.scheduler().totalWeight();
        for (size_t ti = 0; ti < sc.tenants.size(); ++ti) {
            const TenantStats &ts = broker.tenantStats(tenantIds[ti]);
            out.tenants.push_back({sc.tenants[ti].name, ts});
            out.admitted += ts.admitted;
            out.quotaRejected += ts.quotaRejected;
            out.rateRejected += ts.rateRejected;
            out.shedRejected += ts.shedRejected;
            uint64_t w = sc.tenants[ti].policy.weight;
            uint64_t bound =
                std::max<uint64_t>(1, (totalW + w - 1) / w);
            for (uint32_t s : tenantSessions[ti]) {
                uint64_t waited =
                    tb.scheduler().sessionStats(s).maxSweepsWaited;
                out.maxSweepsWaited =
                    std::max(out.maxSweepsWaited, waited);
                if (sc.expect.noStarvation && waited > bound)
                    out.violations.push_back(
                        "starvation: tenant '" + sc.tenants[ti].name +
                        "' session " + std::to_string(s) + " waited " +
                        std::to_string(waited) + " sweeps (bound " +
                        std::to_string(bound) + ")");
            }
        }
        uint64_t completedAll = 0;
        for (const auto &[name, ts] : out.tenants)
            completedAll += ts.completed;
        out.completed = completedAll;
        out.shedLevelEnd = broker.shedLevel();
        out.seusInjected = tb.faultInjector().stats().seusInjected;
        out.clockEnd = tb.clock().now();

        const ScenarioExpect &e = sc.expect;
        auto atLeast = [&](const char *what, uint64_t got,
                          uint64_t min) {
            if (got < min)
                out.violations.push_back(
                    std::string(what) + ": got " + std::to_string(got) +
                    ", expected >= " + std::to_string(min));
        };
        atLeast("completed", out.completed, e.completedMin);
        atLeast("quota_rejected", out.quotaRejected,
                e.quotaRejectedMin);
        atLeast("rate_rejected", out.rateRejected, e.rateRejectedMin);
        atLeast("shed_rejected", out.shedRejected, e.shedRejectedMin);
        atLeast("seus_injected", out.seusInjected, e.seusMin);
        atLeast("dma_bytes", out.dmaBytes, e.dmaBytesMin);
        if (e.recoveredFromShed && out.shedLevelEnd != 0)
            out.violations.push_back(
                "shed level still " + std::to_string(out.shedLevelEnd) +
                " after drain");
        if (out.failovers > e.failoversMax)
            out.violations.push_back(
                "failovers: got " + std::to_string(out.failovers) +
                ", expected <= " + std::to_string(e.failoversMax));
    }
};

/**
 * Drives the sweep loop as an engine event chain. Each sweep event
 * runs actions + submissions inline, then posts the broker pump, the
 * supervisor poll (when due) and the next sweep AT THE SAME INSTANT:
 * FIFO tie-breaking dispatches them in post order, replaying the
 * lockstep call sequence exactly — which is what makes the engine
 * port trace-identical to runScenario (the determinism gate and the
 * engine regression test both diff the artifacts).
 */
struct SweepActor final : sim::Actor
{
    static constexpr uint32_t kSweep = 1;

    ScenarioExec &exec;
    SchedulerPumpActor &pump;
    SupervisorPollActor &poll;
    uint32_t actorId = 0;

    SweepActor(ScenarioExec &e, SchedulerPumpActor &pumpActor,
               SupervisorPollActor &pollActor)
        : exec(e), pump(pumpActor), poll(pollActor)
    {}

    void onEvent(sim::Engine &engine, const sim::Event &event) override
    {
        if (event.kind != kSweep)
            return;
        uint32_t sweep = uint32_t(event.a);
        exec.actions(sweep);
        exec.submissions(sweep);
        engine.postNow(pump.actorId(), SchedulerPumpActor::kSweep);
        if (exec.pollDue(sweep))
            engine.postNow(poll.actorId(), SupervisorPollActor::kPoll);
        if (sweep + 1 < exec.sc.sweeps)
            engine.postNow(actorId, kSweep, sweep + 1);
    }
};

void
runSweepsOnEngine(ScenarioExec &exec)
{
    sim::Engine &engine = exec.tb.engine();
    SchedulerPumpActor pump([&exec] { return exec.pump(); });
    pump.attach(engine, "broker.pump");
    SupervisorPollActor poll(exec.tb.supervisor(),
                             [&exec] { ++exec.out.failovers; });
    poll.attach(engine, "supervisor.poll");
    SweepActor sweeps(exec, pump, poll);
    sweeps.actorId = engine.addActor(sweeps, "scenario.sweeps");

    if (exec.sc.sweeps > 0)
        engine.postNow(sweeps.actorId, SweepActor::kSweep, 0);
    // Each sweep event posts at most 3 others; the budget is a
    // runaway backstop, not a schedule.
    if (!engine.runUntilIdle(uint64_t(exec.sc.sweeps) * 4 + 16))
        exec.out.violations.push_back("engine: event budget exhausted");
}

ScenarioOutcome
runScenarioImpl(const Scenario &scenario, bool onEngine)
{
    ScenarioOutcome out;

    TestbedConfig cfg;
    cfg.rngSeed = scenario.seed;
    cfg.deviceCount = scenario.devices;
    cfg.faultPlan.seed = scenario.seed;
    for (const ScenarioFault &f : scenario.faults)
        cfg.faultPlan.add(f.toRule());
    cfg.maliciousShell = scenario.maliciousShell;
    cfg.attackPlan.forgeHeartbeats = scenario.forgeHeartbeats;
    Testbed tb(cfg);

    obs::TraceRecorder recorder(tb.clock());
    obs::MetricsRegistry metricsReg;
    {
        obs::ObsScope scope(&recorder, &metricsReg);
        tb.installCl(scenarioAccel());
        out.deployOk = tb.runDeployment().ok;
        if (!out.deployOk) {
            out.violations.push_back("deployment failed");
        } else {
            Broker broker(tb, scenario.broker);
            ScenarioExec exec{scenario, tb, broker, out, {}, {}};
            exec.openTenants();

            if (onEngine) {
                runSweepsOnEngine(exec);
            } else {
                for (uint32_t sweep = 0; sweep < scenario.sweeps;
                     ++sweep) {
                    exec.actions(sweep);
                    exec.submissions(sweep);
                    exec.pump();
                    if (exec.pollDue(sweep)) {
                        try {
                            tb.supervisor().pollOnce();
                        } catch (const SalusError &) {
                            ++out.failovers;
                        }
                    }
                }
            }

            exec.drain();
            exec.harvest();
        }
    }
    out.traceJson = recorder.chromeTraceJson();
    out.metricsText = metricsReg.renderText();
    return out;
}

} // namespace

ScenarioOutcome
runScenario(const Scenario &scenario)
{
    return runScenarioImpl(scenario, false);
}

ScenarioOutcome
runScenarioOnEngine(const Scenario &scenario)
{
    return runScenarioImpl(scenario, true);
}

} // namespace salus::core
