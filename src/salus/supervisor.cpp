#include "salus/supervisor.hpp"

#include "common/log.hpp"
#include "common/serde.hpp"
#include "obs/trace.hpp"

namespace salus::core {

// ---- Fleet wire messages --------------------------------------------

Bytes
HeartbeatRequest::serialize() const
{
    BinaryWriter w;
    w.writeU32(deviceId);
    w.writeU64(nonce);
    return w.take();
}

HeartbeatRequest
HeartbeatRequest::deserialize(ByteView data)
{
    BinaryReader r(data);
    HeartbeatRequest m;
    m.deviceId = r.readU32();
    m.nonce = r.readU64();
    return m;
}

Bytes
HeartbeatResponse::serialize() const
{
    BinaryWriter w;
    w.writeU8(reachable);
    w.writeU8(authentic);
    w.writeU64(count);
    w.writeU64(nonceEcho);
    w.writeString(failure);
    return w.take();
}

HeartbeatResponse
HeartbeatResponse::deserialize(ByteView data)
{
    BinaryReader r(data);
    HeartbeatResponse m;
    m.reachable = r.readU8();
    m.authentic = r.readU8();
    if (m.reachable > 1 || m.authentic > 1)
        throw SerdeError("bad heartbeat flag");
    m.count = r.readU64();
    m.nonceEcho = r.readU64();
    m.failure = r.readString();
    return m;
}

Bytes
FailoverRecord::serialize() const
{
    BinaryWriter w;
    w.writeU32(fromDevice);
    w.writeU32(toDevice);
    w.writeU64(atNanos);
    w.writeString(reason);
    w.writeBytes(oldFingerprint);
    w.writeBytes(newFingerprint);
    w.writeU8(attested);
    w.writeU32(attempts);
    return w.take();
}

FailoverRecord
FailoverRecord::deserialize(ByteView data)
{
    BinaryReader r(data);
    FailoverRecord m;
    m.fromDevice = r.readU32();
    m.toDevice = r.readU32();
    m.atNanos = r.readU64();
    m.reason = r.readString();
    m.oldFingerprint = r.readBytes();
    m.newFingerprint = r.readBytes();
    m.attested = r.readU8();
    if (m.attested > 1)
        throw SerdeError("bad failover flag");
    m.attempts = r.readU32();
    return m;
}

// ---- FleetSupervisor ------------------------------------------------

FleetSupervisor::FleetSupervisor(SupervisorDeps deps)
    : deps_(std::move(deps))
{
    trackers_.assign(deps_.deviceCount,
                     fpga::HealthTracker(deps_.health));
    beatFloor_.assign(deps_.deviceCount, 0);
}

void
FleetSupervisor::pollOnce()
{
    obs::Span span(obs::Category::Supervisor, "poll");
    obs::count("supervisor.polls");
    ++polls_;
    sim::Nanos now = deps_.clock ? deps_.clock->now() : 0;
    for (uint32_t d = 0; d < deps_.deviceCount; ++d) {
        fpga::HealthTracker &t = trackers_[d];
        t.tick(now);
        if (t.state() == fpga::HealthState::Quarantined)
            continue; // pulled from service; probation handles return
        if (deps_.injector && deps_.injector->onHeartbeat(d)) {
            t.recordFailure(now, "heartbeat lost in flight");
            continue;
        }
        SmEnclaveApp::HeartbeatResult r = deps_.probe
                                              ? deps_.probe(d)
                                              : SmEnclaveApp::HeartbeatResult{};
        if (r.ok()) {
            // Expected-monotone beat check (active device only —
            // spares answer with count 0 until deployed). The floor
            // survives quarantine and probation reinstatement, so a
            // stale MAC'd heartbeat captured before the quarantine
            // and replayed after reinstatement is still rejected;
            // only a deployment-epoch change (failover/migration)
            // resets it, because redeployment restarts the fabric's
            // counter at 1.
            bool isActive =
                deps_.activeDevice && deps_.activeDevice() == d;
            if (isActive && beatFloor_[d] > 0 &&
                r.count <= beatFloor_[d]) {
                t.recordForgery(now,
                                "stale heartbeat replayed (count " +
                                    std::to_string(r.count) +
                                    " <= floor " +
                                    std::to_string(beatFloor_[d]) +
                                    ")");
                continue;
            }
            if (isActive && r.count > beatFloor_[d])
                beatFloor_[d] = r.count;
            t.recordSuccess(now);
        } else if (r.reachable && !r.authentic) {
            // The device answered but the MAC under Key_attest does
            // not verify: someone between us and the fabric is
            // fabricating liveness. Permanent quarantine.
            t.recordForgery(now, r.failure);
        } else {
            t.recordFailure(now, r.failure);
        }
    }
    maybeFailover();
}

void
FleetSupervisor::runFor(sim::Nanos duration)
{
    if (!deps_.clock) {
        pollOnce();
        return;
    }
    sim::Nanos deadline = deps_.clock->now() + duration;
    while (deps_.clock->now() < deadline) {
        deps_.clock->spend("Fleet Heartbeat", deps_.probePeriod);
        pollOnce();
    }
}

void
FleetSupervisor::noteDeviceFailure(uint32_t deviceId,
                                   const ErrorContext &ctx)
{
    if (deviceId >= trackers_.size())
        return;
    obs::mark(obs::Category::Supervisor, "device_failure",
              uint64_t(deviceId));
    obs::count("supervisor.device_failures");
    sim::Nanos now = deps_.clock ? deps_.clock->now() : 0;
    // Record-only: this is called from inside the SM enclave's
    // request path, where a synchronous failover (which re-runs the
    // whole deployment) would re-enter the channel. The next
    // pollOnce()/guardedOp() acts on the evidence at top level.
    trackers_[deviceId].recordFailure(
        now, ctx.method.empty() ? "retry schedule exhausted"
                                : ctx.method + ": retry schedule "
                                               "exhausted");
}

bool
FleetSupervisor::guardedOp(const std::function<bool()> &op,
                           const std::string &what)
{
    size_t failoversBefore = failovers_.size();
    bool ok = op();
    if (ok)
        return true;
    // The op is evidence of trouble; the SM's onDeviceFailure hook
    // has usually fed the tracker already. Decide failover now.
    maybeFailover();
    if (failovers_.size() > failoversBefore) {
        ErrorContext ctx;
        ctx.method = what;
        ctx.to = "device-" +
                 std::to_string(failovers_.back().fromDevice);
        throw FailoverError(
            "'" + what + "' did not commit: session failed over to "
            "device " + std::to_string(failovers_.back().toDevice) +
            "; the operation is not auto-replayed",
            ctx);
    }
    return false;
}

std::optional<uint32_t>
FleetSupervisor::pickSpare() const
{
    uint32_t active = deps_.activeDevice ? deps_.activeDevice() : 0;
    std::optional<uint32_t> degraded;
    for (uint32_t d = 0; d < deps_.deviceCount; ++d) {
        if (d == active)
            continue;
        switch (trackers_[d].state()) {
          case fpga::HealthState::Healthy:
            return d;
          case fpga::HealthState::Degraded:
          case fpga::HealthState::Probation:
            if (!degraded)
                degraded = d;
            break;
          default:
            break;
        }
    }
    return degraded;
}

void
FleetSupervisor::maybeFailover()
{
    if (failingOver_ || !deps_.activeDevice || !deps_.failover)
        return;
    uint32_t active = deps_.activeDevice();
    if (active >= trackers_.size() ||
        trackers_[active].state() != fpga::HealthState::Quarantined)
        return;

    std::optional<uint32_t> spare = pickSpare();
    if (!spare) {
        logf(LogLevel::Warn, "supervisor",
             "active device ", active,
             " quarantined but no spare remains");
        return;
    }
    std::string reason = trackers_[active].lastReason();
    logf(LogLevel::Info, "supervisor", "failing over ", active, " -> ",
         *spare, ": ", reason);
    obs::Span span(obs::Category::Supervisor, "failover",
                   uint64_t(*spare));
    obs::count("supervisor.failovers");
    sim::Nanos startedAt = deps_.clock ? deps_.clock->now() : 0;
    failingOver_ = true;
    FailoverRecord rec;
    try {
        rec = deps_.failover(active, *spare, reason);
    } catch (...) {
        failingOver_ = false;
        throw;
    }
    failingOver_ = false;
    rec.fromDevice = active;
    rec.toDevice = *spare;
    rec.atNanos = startedAt;
    if (rec.reason.empty())
        rec.reason = reason;
    failovers_.push_back(std::move(rec));
    // The spare was redeployed from scratch: its fabric beat counter
    // restarted, so the old floor would misread beat 1 as a replay.
    resetBeatExpectation(*spare);
}

// ---- Live migration & rolling upgrades ------------------------------

void
FleetSupervisor::resetBeatExpectation(uint32_t deviceId)
{
    if (deviceId < beatFloor_.size())
        beatFloor_[deviceId] = 0;
}

MigrationRecord
FleetSupervisor::migrateActiveTo(uint32_t to, const std::string &reason)
{
    // Every refusal below happens BEFORE the migration machinery
    // touches the scheduler or the enclave: the session keeps serving
    // on the source untouched.
    if (!deps_.activeDevice || !deps_.migrate)
        throw MigrationError("supervisor has no migration wiring");
    if (failingOver_)
        throw MigrationError("failover in progress");
    uint32_t from = deps_.activeDevice();
    if (to == from)
        throw MigrationError("target " + std::to_string(to) +
                             " is already the active device");
    if (to >= trackers_.size())
        throw MigrationError("no such device " + std::to_string(to));
    if (trackers_[to].state() == fpga::HealthState::Quarantined)
        throw MigrationError("target device " + std::to_string(to) +
                             " is quarantined");

    logf(LogLevel::Info, "supervisor", "migrating ", from, " -> ", to,
         ": ", reason);
    obs::Span span(obs::Category::Supervisor, "migration",
                   uint64_t(to));
    obs::count("supervisor.migrations");
    sim::Nanos startedAt = deps_.clock ? deps_.clock->now() : 0;
    failingOver_ = true;
    MigrationRecord rec;
    try {
        rec = deps_.migrate(from, to, reason);
    } catch (...) {
        failingOver_ = false;
        throw;
    }
    failingOver_ = false;
    rec.fromDevice = from;
    rec.toDevice = to;
    rec.atNanos = startedAt;
    if (rec.reason.empty())
        rec.reason = reason;
    // Fresh deployment epoch on the target: its beat counter
    // restarted at 1.
    resetBeatExpectation(to);
    migrations_.push_back(rec);
    return migrations_.back();
}

size_t
FleetSupervisor::drainForUpgrade(uint32_t device, Placement &placement,
                                 const std::string &reason)
{
    if (device >= trackers_.size() ||
        device >= placement.deviceCount())
        throw MigrationError("no such device " +
                             std::to_string(device));

    // Capacity check FIRST: with the device out of the pool, at least
    // one eligible target must remain or nothing is touched.
    placement.setEligible(device, false);
    bool haveCapacity = false;
    for (uint32_t d = 0; d < placement.deviceCount(); ++d) {
        if (placement.eligible(d)) {
            haveCapacity = true;
            break;
        }
    }
    if (!haveCapacity) {
        placement.setEligible(device, true);
        throw MigrationError(
            "no fleet capacity to drain device " +
            std::to_string(device) + "; sessions stay on it");
    }

    obs::Span span(obs::Category::Supervisor, "upgrade_drain",
                   uint64_t(device));
    obs::count("supervisor.upgrade_drains");

    // The real active session moves first (the expensive, fallible
    // part). Any failure restores eligibility and rethrows with the
    // session still serving on the source.
    if (deps_.activeDevice && deps_.activeDevice() == device) {
        uint32_t target = device;
        uint32_t bestLoad = 0;
        bool haveTarget = false;
        for (uint32_t d = 0; d < placement.deviceCount(); ++d) {
            if (!placement.eligible(d) || d >= trackers_.size())
                continue;
            if (trackers_[d].state() ==
                fpga::HealthState::Quarantined)
                continue;
            if (!haveTarget || placement.load(d) < bestLoad) {
                target = d;
                bestLoad = placement.load(d);
                haveTarget = true;
            }
        }
        try {
            if (!haveTarget)
                throw MigrationError(
                    "no healthy eligible target to take the active "
                    "session");
            migrateActiveTo(target, reason);
        } catch (...) {
            placement.setEligible(device, true);
            throw;
        }
    }

    // Logical sessions re-place over the remaining eligible devices.
    size_t moved = 0;
    for (uint64_t sessionId : placement.sessionsOn(device)) {
        placement.migrate(sessionId);
        ++moved;
    }

    // Hold the device out of service until the operator finishes the
    // upgrade; tick() will not offer probation during maintenance.
    sim::Nanos now = deps_.clock ? deps_.clock->now() : 0;
    trackers_[device].beginMaintenance(now, reason);
    return moved;
}

void
FleetSupervisor::completeUpgrade(uint32_t device, Placement &placement)
{
    if (device >= trackers_.size())
        return;
    sim::Nanos now = deps_.clock ? deps_.clock->now() : 0;
    trackers_[device].endMaintenance(now);
    if (device < placement.deviceCount())
        placement.setEligible(device, true);
}

} // namespace salus::core
