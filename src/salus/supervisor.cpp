#include "salus/supervisor.hpp"

#include "common/log.hpp"
#include "common/serde.hpp"
#include "obs/trace.hpp"

namespace salus::core {

// ---- Fleet wire messages --------------------------------------------

Bytes
HeartbeatRequest::serialize() const
{
    BinaryWriter w;
    w.writeU32(deviceId);
    w.writeU64(nonce);
    return w.take();
}

HeartbeatRequest
HeartbeatRequest::deserialize(ByteView data)
{
    BinaryReader r(data);
    HeartbeatRequest m;
    m.deviceId = r.readU32();
    m.nonce = r.readU64();
    return m;
}

Bytes
HeartbeatResponse::serialize() const
{
    BinaryWriter w;
    w.writeU8(reachable);
    w.writeU8(authentic);
    w.writeU64(count);
    w.writeU64(nonceEcho);
    w.writeString(failure);
    return w.take();
}

HeartbeatResponse
HeartbeatResponse::deserialize(ByteView data)
{
    BinaryReader r(data);
    HeartbeatResponse m;
    m.reachable = r.readU8();
    m.authentic = r.readU8();
    if (m.reachable > 1 || m.authentic > 1)
        throw SerdeError("bad heartbeat flag");
    m.count = r.readU64();
    m.nonceEcho = r.readU64();
    m.failure = r.readString();
    return m;
}

Bytes
FailoverRecord::serialize() const
{
    BinaryWriter w;
    w.writeU32(fromDevice);
    w.writeU32(toDevice);
    w.writeU64(atNanos);
    w.writeString(reason);
    w.writeBytes(oldFingerprint);
    w.writeBytes(newFingerprint);
    w.writeU8(attested);
    w.writeU32(attempts);
    return w.take();
}

FailoverRecord
FailoverRecord::deserialize(ByteView data)
{
    BinaryReader r(data);
    FailoverRecord m;
    m.fromDevice = r.readU32();
    m.toDevice = r.readU32();
    m.atNanos = r.readU64();
    m.reason = r.readString();
    m.oldFingerprint = r.readBytes();
    m.newFingerprint = r.readBytes();
    m.attested = r.readU8();
    if (m.attested > 1)
        throw SerdeError("bad failover flag");
    m.attempts = r.readU32();
    return m;
}

// ---- FleetSupervisor ------------------------------------------------

FleetSupervisor::FleetSupervisor(SupervisorDeps deps)
    : deps_(std::move(deps))
{
    trackers_.assign(deps_.deviceCount,
                     fpga::HealthTracker(deps_.health));
}

void
FleetSupervisor::pollOnce()
{
    obs::Span span(obs::Category::Supervisor, "poll");
    obs::count("supervisor.polls");
    ++polls_;
    sim::Nanos now = deps_.clock ? deps_.clock->now() : 0;
    for (uint32_t d = 0; d < deps_.deviceCount; ++d) {
        fpga::HealthTracker &t = trackers_[d];
        t.tick(now);
        if (t.state() == fpga::HealthState::Quarantined)
            continue; // pulled from service; probation handles return
        if (deps_.injector && deps_.injector->onHeartbeat(d)) {
            t.recordFailure(now, "heartbeat lost in flight");
            continue;
        }
        SmEnclaveApp::HeartbeatResult r = deps_.probe
                                              ? deps_.probe(d)
                                              : SmEnclaveApp::HeartbeatResult{};
        if (r.ok()) {
            t.recordSuccess(now);
        } else if (r.reachable && !r.authentic) {
            // The device answered but the MAC under Key_attest does
            // not verify: someone between us and the fabric is
            // fabricating liveness. Permanent quarantine.
            t.recordForgery(now, r.failure);
        } else {
            t.recordFailure(now, r.failure);
        }
    }
    maybeFailover();
}

void
FleetSupervisor::runFor(sim::Nanos duration)
{
    if (!deps_.clock) {
        pollOnce();
        return;
    }
    sim::Nanos deadline = deps_.clock->now() + duration;
    while (deps_.clock->now() < deadline) {
        deps_.clock->spend("Fleet Heartbeat", deps_.probePeriod);
        pollOnce();
    }
}

void
FleetSupervisor::noteDeviceFailure(uint32_t deviceId,
                                   const ErrorContext &ctx)
{
    if (deviceId >= trackers_.size())
        return;
    obs::mark(obs::Category::Supervisor, "device_failure",
              uint64_t(deviceId));
    obs::count("supervisor.device_failures");
    sim::Nanos now = deps_.clock ? deps_.clock->now() : 0;
    // Record-only: this is called from inside the SM enclave's
    // request path, where a synchronous failover (which re-runs the
    // whole deployment) would re-enter the channel. The next
    // pollOnce()/guardedOp() acts on the evidence at top level.
    trackers_[deviceId].recordFailure(
        now, ctx.method.empty() ? "retry schedule exhausted"
                                : ctx.method + ": retry schedule "
                                               "exhausted");
}

bool
FleetSupervisor::guardedOp(const std::function<bool()> &op,
                           const std::string &what)
{
    size_t failoversBefore = failovers_.size();
    bool ok = op();
    if (ok)
        return true;
    // The op is evidence of trouble; the SM's onDeviceFailure hook
    // has usually fed the tracker already. Decide failover now.
    maybeFailover();
    if (failovers_.size() > failoversBefore) {
        ErrorContext ctx;
        ctx.method = what;
        ctx.to = "device-" +
                 std::to_string(failovers_.back().fromDevice);
        throw FailoverError(
            "'" + what + "' did not commit: session failed over to "
            "device " + std::to_string(failovers_.back().toDevice) +
            "; the operation is not auto-replayed",
            ctx);
    }
    return false;
}

std::optional<uint32_t>
FleetSupervisor::pickSpare() const
{
    uint32_t active = deps_.activeDevice ? deps_.activeDevice() : 0;
    std::optional<uint32_t> degraded;
    for (uint32_t d = 0; d < deps_.deviceCount; ++d) {
        if (d == active)
            continue;
        switch (trackers_[d].state()) {
          case fpga::HealthState::Healthy:
            return d;
          case fpga::HealthState::Degraded:
          case fpga::HealthState::Probation:
            if (!degraded)
                degraded = d;
            break;
          default:
            break;
        }
    }
    return degraded;
}

void
FleetSupervisor::maybeFailover()
{
    if (failingOver_ || !deps_.activeDevice || !deps_.failover)
        return;
    uint32_t active = deps_.activeDevice();
    if (active >= trackers_.size() ||
        trackers_[active].state() != fpga::HealthState::Quarantined)
        return;

    std::optional<uint32_t> spare = pickSpare();
    if (!spare) {
        logf(LogLevel::Warn, "supervisor",
             "active device ", active,
             " quarantined but no spare remains");
        return;
    }
    std::string reason = trackers_[active].lastReason();
    logf(LogLevel::Info, "supervisor", "failing over ", active, " -> ",
         *spare, ": ", reason);
    obs::Span span(obs::Category::Supervisor, "failover",
                   uint64_t(*spare));
    obs::count("supervisor.failovers");
    sim::Nanos startedAt = deps_.clock ? deps_.clock->now() : 0;
    failingOver_ = true;
    FailoverRecord rec;
    try {
        rec = deps_.failover(active, *spare, reason);
    } catch (...) {
        failingOver_ = false;
        throw;
    }
    failingOver_ = false;
    rec.fromDevice = active;
    rec.toDevice = *spare;
    rec.atNanos = startedAt;
    if (rec.reason.empty())
        rec.reason = reason;
    failovers_.push_back(std::move(rec));
}

} // namespace salus::core
