#include "salus/user_client.hpp"

#include <algorithm>

#include "common/errors.hpp"
#include "common/serde.hpp"
#include "crypto/aes_gcm.hpp"
#include "crypto/x25519.hpp"
#include "obs/trace.hpp"
#include "salus/user_enclave.hpp"

namespace salus::core {

UserClient::UserClient(ClientConfig config,
                       const tee::QuoteVerificationService &qvs,
                       net::Network &network, crypto::RandomSource &rng,
                       SimHooks sim)
    : config_(std::move(config)), qvs_(qvs), network_(network),
      rng_(rng), sim_(sim)
{
}

UserClient::Outcome
UserClient::deployAndAttest()
{
    obs::Span span(obs::Category::Attestation, "deploy_and_attest");
    Outcome out;
    int maxAttempts = std::max(1, config_.retry.maxAttempts);
    for (int attempt = 1; attempt <= maxAttempts; ++attempt) {
        if (attempt > 1) {
            sim_.spend(net::kRetryBackoffPhase,
                       config_.retry.backoffBefore(attempt));
        }
        out = attemptOnce();
        out.attempts = attempt;
        // Security rejections and broker policy verdicts are both
        // deterministic: retrying replays the same request into the
        // same refusal, so neither class is ever retried.
        if (out.ok || out.failureClass == net::FailureClass::Security ||
            out.failureClass == net::FailureClass::Policy)
            return out;
    }
    if (maxAttempts > 1)
        out.failure += " (after " + std::to_string(maxAttempts) +
                       " attempts)";
    return out;
}

UserClient::Outcome
UserClient::attemptOnce()
{
    obs::Span span(obs::Category::Attestation, "ra_attempt");
    Outcome out;
    PhaseScope phase(sim_, phases::kUserRa);

    // --- ② RA request (single round trip, Fig. 4b) -------------------
    // The nonce is fresh per attempt: a replayed response from an
    // earlier attempt can never satisfy the binding check below.
    RaRequest req;
    req.clientNonce = rng_.bytes(32);
    req.metadata = config_.metadata.serialize();

    Bytes respBytes;
    try {
        respBytes = network_.call(config_.selfEndpoint,
                                  config_.cloudEndpoint, "raRequest",
                                  req.serialize(), phases::kUserRa,
                                  config_.retry.deadline);
    } catch (const TimeoutError &e) {
        out.failure = std::string("RA timed out: ") + e.what();
        out.failureClass = net::FailureClass::Timeout;
        return out;
    } catch (const PolicyError &e) {
        // A broker fronting the cloud host refused admission
        // (quota/rate/overload). Non-retryable: the verdict is
        // deterministic until capacity frees or virtual time passes.
        out.failure = std::string("deployment refused by policy: ") +
                      e.what();
        out.failureClass = net::FailureClass::Policy;
        return out;
    } catch (const NetError &e) {
        out.failure = std::string("RA transport failure: ") + e.what();
        out.failureClass = net::FailureClass::Transport;
        return out;
    }

    RaResponse resp;
    tee::Quote quote;
    try {
        resp = RaResponse::deserialize(respBytes);
        if (!resp.failure.empty()) {
            out.failure = "platform reported: " + resp.failure;
            out.failureClass = resp.retryable
                                   ? net::FailureClass::Transport
                                   : net::FailureClass::Security;
            return out;
        }
        quote = tee::Quote::deserialize(resp.quote);
    } catch (const SalusError &) {
        // A response we cannot even parse was garbled in flight (or
        // forged — in which case retrying is equally useless and
        // equally safe, since nothing was accepted).
        out.failure = "malformed RA response";
        out.failureClass = net::FailureClass::Transport;
        return out;
    }

    // --- verify the quote via the (WAN) verification service ---------
    if (sim_.active()) {
        sim_.spend(phases::kUserRa,
                   sim_.cost->quoteVerification +
                       sim::Nanos(sim_.cost->dcapCollateralRoundTrips) *
                           sim_.cost->rpc(sim::LinkKind::Wan, 2048,
                                          16384));
    }
    tee::QuoteVerdict verdict = qvs_.verify(quote);
    if (!verdict.ok) {
        out.failure = "quote verification failed: " + verdict.reason;
        out.failureClass = net::FailureClass::Security;
        return out;
    }
    if (verdict.body.mrenclave != config_.expectedUserEnclave) {
        out.failure = "user enclave measurement mismatch";
        out.failureClass = net::FailureClass::Security;
        return out;
    }
    if (!config_.expectedUserSigner.empty() &&
        verdict.body.mrsigner != config_.expectedUserSigner) {
        out.failure = "user enclave signer (MRSIGNER) mismatch";
        out.failureClass = net::FailureClass::Security;
        return out;
    }
    if (verdict.body.isvSvn < config_.minUserIsvSvn) {
        out.failure = "user enclave security version too old";
        out.failureClass = net::FailureClass::Security;
        return out;
    }

    // --- check the cascaded binding -----------------------------------
    // The report data must prove that THIS nonce, THIS metadata, the
    // pinned SM build, successful LA + CL attestation, and THIS wrap
    // key were all bound together inside the enclave.
    Bytes expect = tee::padReportData(cascadedReportData(
        req.clientNonce, config_.metadata.digest(), config_.expectedSm,
        true, true, resp.wrapPubKey));
    if (verdict.body.reportData != expect) {
        out.failure = "cascaded report binding mismatch";
        out.failureClass = net::FailureClass::Security;
        return out;
    }

    // --- upload the data key, wrapped to the attested enclave --------
    out.dataKey = rng_.bytes(32);
    crypto::X25519KeyPair eph = crypto::x25519Generate(rng_);
    Bytes wrapKey;
    try {
        wrapKey = crypto::deriveSessionKey(eph.privateKey,
                                           resp.wrapPubKey,
                                           "salus-datakey-v1", 32);
    } catch (const CryptoError &) {
        // The wrap key is attested (bound in the report data), so a
        // bad one got past verification — a security problem, not a
        // transport one.
        out.failure = "bad enclave wrap key";
        out.failureClass = net::FailureClass::Security;
        return out;
    }
    crypto::AesGcm gcm(wrapKey);
    secureZero(wrapKey);
    Bytes iv = rng_.bytes(12);
    crypto::GcmSealed sealed = gcm.seal(iv, ByteView(), out.dataKey);

    BinaryWriter w;
    w.writeBytes(eph.publicKey);
    w.writeBytes(iv);
    w.writeBytes(sealed.ciphertext);
    w.writeBytes(sealed.tag);

    // The upload is idempotent (re-installing the same wrapped key is
    // a no-op), so the transport layer may retry it directly.
    net::CallOutcome upload = network_.callWithRetry(
        config_.selfEndpoint, config_.cloudEndpoint, "dataKey", w.data(),
        config_.retry, phases::kUserRa);
    if (!upload.ok()) {
        out.failure = "data key upload failed: " + upload.error;
        out.failureClass = upload.failure;
        return out;
    }
    if (upload.response.size() != 1 || upload.response[0] != 1) {
        // GCM authentication inside the enclave rejects a garbled
        // blob; the key was NOT accepted, so a fresh outer attempt
        // (with fresh key material) is safe.
        out.failure = "enclave did not accept the data key";
        out.failureClass = net::FailureClass::Transport;
        return out;
    }

    out.ok = true;
    out.failureClass = net::FailureClass::None;
    return out;
}

} // namespace salus::core
