#include "salus/user_client.hpp"

#include "common/errors.hpp"
#include "common/serde.hpp"
#include "crypto/aes_gcm.hpp"
#include "crypto/x25519.hpp"
#include "salus/user_enclave.hpp"

namespace salus::core {

UserClient::UserClient(ClientConfig config,
                       const tee::QuoteVerificationService &qvs,
                       net::Network &network, crypto::RandomSource &rng,
                       SimHooks sim)
    : config_(std::move(config)), qvs_(qvs), network_(network),
      rng_(rng), sim_(sim)
{
}

UserClient::Outcome
UserClient::deployAndAttest()
{
    Outcome out;
    PhaseScope phase(sim_, phases::kUserRa);

    // --- ② RA request (single round trip, Fig. 4b) -------------------
    RaRequest req;
    req.clientNonce = rng_.bytes(32);
    req.metadata = config_.metadata.serialize();

    Bytes respBytes;
    try {
        respBytes = network_.call(config_.selfEndpoint,
                                  config_.cloudEndpoint, "raRequest",
                                  req.serialize(), phases::kUserRa);
    } catch (const NetError &e) {
        out.failure = std::string("RA transport failure: ") + e.what();
        return out;
    }

    RaResponse resp;
    tee::Quote quote;
    try {
        resp = RaResponse::deserialize(respBytes);
        if (!resp.failure.empty()) {
            out.failure = "platform reported: " + resp.failure;
            return out;
        }
        quote = tee::Quote::deserialize(resp.quote);
    } catch (const SalusError &) {
        out.failure = "malformed RA response";
        return out;
    }

    // --- verify the quote via the (WAN) verification service ---------
    if (sim_.active()) {
        sim_.spend(phases::kUserRa,
                   sim_.cost->quoteVerification +
                       sim::Nanos(sim_.cost->dcapCollateralRoundTrips) *
                           sim_.cost->rpc(sim::LinkKind::Wan, 2048,
                                          16384));
    }
    tee::QuoteVerdict verdict = qvs_.verify(quote);
    if (!verdict.ok) {
        out.failure = "quote verification failed: " + verdict.reason;
        return out;
    }
    if (verdict.body.mrenclave != config_.expectedUserEnclave) {
        out.failure = "user enclave measurement mismatch";
        return out;
    }
    if (!config_.expectedUserSigner.empty() &&
        verdict.body.mrsigner != config_.expectedUserSigner) {
        out.failure = "user enclave signer (MRSIGNER) mismatch";
        return out;
    }
    if (verdict.body.isvSvn < config_.minUserIsvSvn) {
        out.failure = "user enclave security version too old";
        return out;
    }

    // --- check the cascaded binding -----------------------------------
    // The report data must prove that THIS nonce, THIS metadata, the
    // pinned SM build, successful LA + CL attestation, and THIS wrap
    // key were all bound together inside the enclave.
    Bytes expect = tee::padReportData(cascadedReportData(
        req.clientNonce, config_.metadata.digest(), config_.expectedSm,
        true, true, resp.wrapPubKey));
    if (verdict.body.reportData != expect) {
        out.failure = "cascaded report binding mismatch";
        return out;
    }

    // --- upload the data key, wrapped to the attested enclave --------
    out.dataKey = rng_.bytes(32);
    crypto::X25519KeyPair eph = crypto::x25519Generate(rng_);
    Bytes wrapKey;
    try {
        wrapKey = crypto::deriveSessionKey(eph.privateKey,
                                           resp.wrapPubKey,
                                           "salus-datakey-v1", 32);
    } catch (const CryptoError &) {
        out.failure = "bad enclave wrap key";
        return out;
    }
    crypto::AesGcm gcm(wrapKey);
    secureZero(wrapKey);
    Bytes iv = rng_.bytes(12);
    crypto::GcmSealed sealed = gcm.seal(iv, ByteView(), out.dataKey);

    BinaryWriter w;
    w.writeBytes(eph.publicKey);
    w.writeBytes(iv);
    w.writeBytes(sealed.ciphertext);
    w.writeBytes(sealed.tag);

    Bytes ack;
    try {
        ack = network_.call(config_.selfEndpoint, config_.cloudEndpoint,
                            "dataKey", w.data(), phases::kUserRa);
    } catch (const NetError &e) {
        out.failure = std::string("data key upload failed: ") + e.what();
        return out;
    }
    if (ack.size() != 1 || ack[0] != 1) {
        out.failure = "enclave did not accept the data key";
        return out;
    }

    out.ok = true;
    return out;
}

} // namespace salus::core
