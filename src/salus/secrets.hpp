/**
 * @file
 * The secrets Salus injects into the CL bitstream at deployment time
 * (paper §4.2, §4.5): the attestation key (the RoT), the session key
 * material for the transparent register channel, and the session
 * counter base. Each maps to one reserved BRAM cell in the SM logic,
 * patched by the SM enclave via bitstream manipulation.
 */

#ifndef SALUS_SALUS_SECRETS_HPP
#define SALUS_SALUS_SECRETS_HPP

#include "common/bytes.hpp"
#include "crypto/random.hpp"

namespace salus::core {

/** Sizes of the reserved BRAM cells. */
constexpr size_t kKeyAttestSize = 16;  ///< SipHash-2-4 key
constexpr size_t kKeySessionSize = 48; ///< AES-128 key + HMAC key
constexpr size_t kCtrSessionSize = 8;  ///< u64 counter base

/** Conventional cell names inside the SM logic hierarchy. */
extern const char *const kKeyAttestCell;
extern const char *const kKeySessionCell;
extern const char *const kCtrSessionCell;

/** One deployment's freshly generated CL secrets. */
struct ClSecrets
{
    Bytes keyAttest;   ///< 16 bytes, SipHash key (the RoT)
    Bytes keySession;  ///< 48 bytes: AES-128 key(16) + HMAC key(32)
    uint64_t ctrBase = 0;

    /** Generates fresh random secrets (inside the SM enclave). */
    static ClSecrets generate(crypto::RandomSource &rng);

    /** AES-128 portion of the session key. */
    ByteView sessionAesKey() const;
    /** HMAC portion of the session key. */
    ByteView sessionMacKey() const;

    /** BRAM image of the counter cell. */
    Bytes ctrBytes() const;

    /** SHA-256 over keyAttest || keySession || ctrBase: the identity
     *  of one deployment epoch's secrets. Safe to store and compare
     *  outside the enclave (tombstones, migration tickets) — it
     *  reveals nothing about the keys. */
    Bytes fingerprint() const;

    /** Wipes all key material. */
    void wipe();
};

} // namespace salus::core

#endif // SALUS_SALUS_SECRETS_HPP
